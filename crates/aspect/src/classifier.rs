//! The binary-classifier abstraction.
//!
//! The paper trains "one classifier for each Y … which can classify a
//! paragraph as relevant to Y or not" and then *takes the classifier output
//! as ground truth* for the whole evaluation. Any high-accuracy paragraph
//! classifier fills that role; this crate ships two — multinomial Naive
//! Bayes and a maximum-entropy (logistic) model, the non-sequential core of
//! the CRFs the paper used.

use l2q_text::Bow;

/// A trained binary text classifier over bags-of-words.
pub trait BinaryClassifier {
    /// Probability that the bag is a positive (relevant) example.
    fn prob(&self, bow: &Bow) -> f64;

    /// Hard decision at the 0.5 threshold.
    fn classify(&self, bow: &Bow) -> bool {
        self.prob(bow) >= 0.5
    }
}

/// A labelled training/evaluation example.
#[derive(Clone, Debug)]
pub struct Example {
    /// Feature bag.
    pub bow: Bow,
    /// Positive label?
    pub label: bool,
}

/// Accuracy of a classifier over examples (fraction correct; 1.0 on empty
/// input by convention — nothing to get wrong).
pub fn accuracy<C: BinaryClassifier>(clf: &C, examples: &[Example]) -> f64 {
    if examples.is_empty() {
        return 1.0;
    }
    let correct = examples
        .iter()
        .filter(|e| clf.classify(&e.bow) == e.label)
        .count();
    correct as f64 / examples.len() as f64
}

/// Precision/recall/F1 of the positive class.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Prf {
    /// Positive-class precision.
    pub precision: f64,
    /// Positive-class recall.
    pub recall: f64,
    /// Harmonic mean of the two.
    pub f1: f64,
}

/// Compute positive-class precision/recall/F1.
pub fn prf<C: BinaryClassifier>(clf: &C, examples: &[Example]) -> Prf {
    let (mut tp, mut fp, mut fneg) = (0usize, 0usize, 0usize);
    for e in examples {
        match (clf.classify(&e.bow), e.label) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fneg += 1,
            (false, false) => {}
        }
    }
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fneg == 0 {
        0.0
    } else {
        tp as f64 / (tp + fneg) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    Prf {
        precision,
        recall,
        f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2q_text::Sym;

    /// Classifies positive iff the bag contains Sym(1).
    struct HasOne;
    impl BinaryClassifier for HasOne {
        fn prob(&self, bow: &Bow) -> f64 {
            if bow.contains(Sym(1)) {
                0.9
            } else {
                0.1
            }
        }
    }

    fn ex(ids: &[u32], label: bool) -> Example {
        Example {
            bow: ids.iter().copied().map(Sym).collect(),
            label,
        }
    }

    #[test]
    fn accuracy_counts_correct_decisions() {
        let clf = HasOne;
        let data = [
            ex(&[1, 2], true),
            ex(&[2, 3], false),
            ex(&[1], false), // wrong
            ex(&[3], true),  // wrong
        ];
        assert!((accuracy(&clf, &data) - 0.5).abs() < 1e-12);
        assert_eq!(accuracy(&clf, &[]), 1.0);
    }

    #[test]
    fn prf_on_perfect_classifier() {
        let clf = HasOne;
        let data = [ex(&[1], true), ex(&[2], false)];
        let m = prf(&clf, &data);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn prf_handles_no_positive_predictions() {
        let clf = HasOne;
        let data = [ex(&[2], true)];
        let m = prf(&clf, &data);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
    }
}
