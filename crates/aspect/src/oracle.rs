//! The relevance oracle: the materialized target function Y.
//!
//! The paper defines the target aspect as a function `Y : P → {1, 0}` and
//! materializes it with the per-aspect classifiers, whose "output is taken
//! as the ground truth". The [`RelevanceOracle`] precomputes that output
//! for every page and aspect: a page is relevant iff at least one of its
//! paragraphs is classified relevant.
//!
//! For ablations and tests an oracle can also be built directly from the
//! generator's ground-truth labels.

use crate::classifier::BinaryClassifier;
use crate::trainer::AspectModel;
use l2q_corpus::{AspectId, Corpus, EntityId, PageId};
use l2q_text::Bow;

/// Precomputed page-level relevance for every aspect.
pub struct RelevanceOracle {
    /// `relevant[aspect][page]`.
    relevant: Vec<Vec<bool>>,
}

impl RelevanceOracle {
    /// Materialize Y from trained classifiers (the paper's setup).
    pub fn from_models(corpus: &Corpus, models: &[AspectModel]) -> Self {
        assert_eq!(
            models.len(),
            corpus.aspect_count(),
            "need one model per aspect"
        );
        let mut relevant = vec![vec![false; corpus.pages.len()]; corpus.aspect_count()];
        for page in &corpus.pages {
            for para in &page.paragraphs {
                let bow = Bow::from_words(&para.words);
                for model in models {
                    if !relevant[model.aspect.index()][page.id.index()] && model.classify(&bow) {
                        relevant[model.aspect.index()][page.id.index()] = true;
                    }
                }
            }
        }
        Self { relevant }
    }

    /// Build from the generator's ground-truth labels (perfect Y).
    pub fn from_truth(corpus: &Corpus) -> Self {
        let mut relevant = vec![vec![false; corpus.pages.len()]; corpus.aspect_count()];
        for page in &corpus.pages {
            for a in corpus.aspects() {
                relevant[a.index()][page.id.index()] = page.truth_relevant(a);
            }
        }
        Self { relevant }
    }

    /// Y(p) for the given aspect.
    pub fn is_relevant(&self, aspect: AspectId, page: PageId) -> bool {
        self.relevant[aspect.index()][page.index()]
    }

    /// All relevant pages of an entity for an aspect.
    pub fn relevant_pages(&self, corpus: &Corpus, e: EntityId, aspect: AspectId) -> Vec<PageId> {
        corpus
            .pages_of(e)
            .iter()
            .filter(|p| self.is_relevant(aspect, p.id))
            .map(|p| p.id)
            .collect()
    }

    /// Number of relevant pages of an entity for an aspect.
    pub fn relevant_count(&self, corpus: &Corpus, e: EntityId, aspect: AspectId) -> usize {
        corpus
            .pages_of(e)
            .iter()
            .filter(|p| self.is_relevant(aspect, p.id))
            .count()
    }

    /// Agreement with the generator ground truth over all (aspect, page)
    /// pairs — a corpus-level sanity measure of the materialized Y.
    pub fn truth_agreement(&self, corpus: &Corpus) -> f64 {
        let mut total = 0usize;
        let mut agree = 0usize;
        for page in &corpus.pages {
            for a in corpus.aspects() {
                total += 1;
                if self.is_relevant(a, page.id) == page.truth_relevant(a) {
                    agree += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            agree as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{train_aspect_models, TrainConfig};
    use l2q_corpus::{generate, researchers_domain, CorpusConfig};

    fn corpus() -> Corpus {
        generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap()
    }

    #[test]
    fn truth_oracle_matches_page_ground_truth() {
        let c = corpus();
        let oracle = RelevanceOracle::from_truth(&c);
        assert_eq!(oracle.truth_agreement(&c), 1.0);
        for page in &c.pages {
            for a in c.aspects() {
                assert_eq!(oracle.is_relevant(a, page.id), page.truth_relevant(a));
            }
        }
    }

    #[test]
    fn model_oracle_agrees_with_truth_mostly() {
        let c = corpus();
        let models = train_aspect_models(&c, &TrainConfig::default());
        let oracle = RelevanceOracle::from_models(&c, &models);
        let agreement = oracle.truth_agreement(&c);
        assert!(
            agreement >= 0.9,
            "classifier-materialized Y agrees with truth only {agreement:.3}"
        );
    }

    #[test]
    fn relevant_pages_belong_to_the_entity() {
        let c = corpus();
        let oracle = RelevanceOracle::from_truth(&c);
        for e in c.entity_ids() {
            for a in c.aspects() {
                for p in oracle.relevant_pages(&c, e, a) {
                    assert_eq!(c.page(p).entity, e);
                }
                assert_eq!(
                    oracle.relevant_count(&c, e, a),
                    oracle.relevant_pages(&c, e, a).len()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "one model per aspect")]
    fn model_count_mismatch_panics() {
        let c = corpus();
        RelevanceOracle::from_models(&c, &[]);
    }
}
