//! Multinomial Naive Bayes with Laplace smoothing.
//!
//! The lightweight baseline classifier: fast to train, surprisingly strong
//! on topical text, and a sanity check for the maxent model.

use crate::classifier::{BinaryClassifier, Example};
use l2q_text::{Bow, Sym};
use std::collections::HashMap;

/// A trained multinomial NB binary classifier.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    /// log P(positive) − log P(negative).
    log_prior_odds: f64,
    /// Per-word log P(w|+) − log P(w|−) (missing → computed from defaults).
    log_odds: HashMap<Sym, f64>,
    /// log-odds for words unseen in training.
    default_log_odds: f64,
}

impl NaiveBayes {
    /// Train on labelled examples.
    ///
    /// Laplace smoothing with α = 1 over the union vocabulary. If one class
    /// is absent the prior saturates to ±`PRIOR_CAP`.
    pub fn train(examples: &[Example]) -> Self {
        const PRIOR_CAP: f64 = 10.0;
        let mut pos_counts: HashMap<Sym, u64> = HashMap::new();
        let mut neg_counts: HashMap<Sym, u64> = HashMap::new();
        let (mut pos_tokens, mut neg_tokens) = (0u64, 0u64);
        let (mut pos_docs, mut neg_docs) = (0u64, 0u64);

        for e in examples {
            let (counts, tokens, docs) = if e.label {
                (&mut pos_counts, &mut pos_tokens, &mut pos_docs)
            } else {
                (&mut neg_counts, &mut neg_tokens, &mut neg_docs)
            };
            *docs += 1;
            for (w, c) in e.bow.iter() {
                *counts.entry(w).or_insert(0) += u64::from(c);
                *tokens += u64::from(c);
            }
        }

        let log_prior_odds = if pos_docs == 0 {
            -PRIOR_CAP
        } else if neg_docs == 0 {
            PRIOR_CAP
        } else {
            (pos_docs as f64).ln() - (neg_docs as f64).ln()
        };

        let mut vocab: Vec<Sym> = pos_counts
            .keys()
            .chain(neg_counts.keys())
            .copied()
            .collect();
        vocab.sort_unstable();
        vocab.dedup();
        let v = vocab.len() as f64;

        let denom_pos = pos_tokens as f64 + v;
        let denom_neg = neg_tokens as f64 + v;
        let default_log_odds = (1.0 / denom_pos.max(1.0)).ln() - (1.0 / denom_neg.max(1.0)).ln();

        let mut log_odds = HashMap::with_capacity(vocab.len());
        for w in vocab {
            let cp = *pos_counts.get(&w).unwrap_or(&0) as f64;
            let cn = *neg_counts.get(&w).unwrap_or(&0) as f64;
            let lp = ((cp + 1.0) / denom_pos.max(1.0)).ln();
            let ln_ = ((cn + 1.0) / denom_neg.max(1.0)).ln();
            log_odds.insert(w, lp - ln_);
        }

        Self {
            log_prior_odds,
            log_odds,
            default_log_odds,
        }
    }

    /// Raw decision score (log-odds of the positive class).
    pub fn score(&self, bow: &Bow) -> f64 {
        let mut s = self.log_prior_odds;
        for (w, c) in bow.iter() {
            let lo = self
                .log_odds
                .get(&w)
                .copied()
                .unwrap_or(self.default_log_odds);
            s += f64::from(c) * lo;
        }
        s
    }
}

impl BinaryClassifier for NaiveBayes {
    fn prob(&self, bow: &Bow) -> f64 {
        let s = self.score(bow);
        1.0 / (1.0 + (-s).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::accuracy;

    fn ex(ids: &[u32], label: bool) -> Example {
        Example {
            bow: ids.iter().copied().map(Sym).collect(),
            label,
        }
    }

    fn toy_train() -> Vec<Example> {
        // Word 1 ⇒ positive, word 9 ⇒ negative, word 5 neutral.
        vec![
            ex(&[1, 5], true),
            ex(&[1, 1, 5], true),
            ex(&[1], true),
            ex(&[9, 5], false),
            ex(&[9, 9], false),
            ex(&[9], false),
        ]
    }

    #[test]
    fn separable_data_classifies_perfectly() {
        let nb = NaiveBayes::train(&toy_train());
        let test = [ex(&[1, 5], true), ex(&[9, 5], false), ex(&[1, 1], true)];
        assert_eq!(accuracy(&nb, &test), 1.0);
    }

    #[test]
    fn prob_is_a_probability() {
        let nb = NaiveBayes::train(&toy_train());
        for ids in [&[1u32][..], &[9], &[5], &[42]] {
            let b: Bow = ids.iter().copied().map(Sym).collect();
            let p = nb.prob(&b);
            assert!((0.0..=1.0).contains(&p), "p={p}");
        }
    }

    #[test]
    fn indicative_word_shifts_probability() {
        let nb = NaiveBayes::train(&toy_train());
        let pos: Bow = [Sym(1)].into_iter().collect();
        let neg: Bow = [Sym(9)].into_iter().collect();
        assert!(nb.prob(&pos) > 0.5);
        assert!(nb.prob(&neg) < 0.5);
    }

    #[test]
    fn single_class_training_saturates_prior() {
        let nb = NaiveBayes::train(&[ex(&[1], true), ex(&[2], true)]);
        let b: Bow = [Sym(3)].into_iter().collect();
        assert!(nb.prob(&b) > 0.5, "all-positive training → positive prior");
    }

    #[test]
    fn empty_training_is_safe() {
        let nb = NaiveBayes::train(&[]);
        let b: Bow = [Sym(1)].into_iter().collect();
        let p = nb.prob(&b);
        assert!((0.0..=1.0).contains(&p));
    }
}
