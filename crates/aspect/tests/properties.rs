//! Property-based tests for the classifier substrate.

use l2q_aspect::{accuracy, prf, BinaryClassifier, Example, Logistic, NaiveBayes};
use l2q_text::{Bow, Sym};
use proptest::prelude::*;

fn arb_examples() -> impl Strategy<Value = Vec<Example>> {
    proptest::collection::vec(
        (proptest::collection::vec(0u32..20, 1..12), any::<bool>()),
        1..40,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(ids, label)| Example {
                bow: ids.into_iter().map(Sym).collect(),
                label,
            })
            .collect()
    })
}

proptest! {
    /// Both classifiers always emit probabilities in [0, 1] on arbitrary
    /// training data and arbitrary inputs.
    #[test]
    fn probabilities_are_bounded(data in arb_examples(),
                                 input in proptest::collection::vec(0u32..24, 0..16)) {
        let bow: Bow = input.into_iter().map(Sym).collect();
        let nb = NaiveBayes::train(&data);
        let lr = Logistic::train_default(&data);
        for p in [nb.prob(&bow), lr.prob(&bow)] {
            prop_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
            prop_assert!(p.is_finite());
        }
    }

    /// Accuracy and PRF metrics are within [0, 1] and mutually consistent:
    /// accuracy of a constant-false classifier equals the negative rate.
    #[test]
    fn metrics_are_consistent(data in arb_examples()) {
        struct Never;
        impl BinaryClassifier for Never {
            fn prob(&self, _: &Bow) -> f64 { 0.0 }
        }
        let acc = accuracy(&Never, &data);
        let neg_rate = data.iter().filter(|e| !e.label).count() as f64 / data.len() as f64;
        prop_assert!((acc - neg_rate).abs() < 1e-12);
        let m = prf(&Never, &data);
        prop_assert_eq!(m.precision, 0.0);
        prop_assert_eq!(m.recall, 0.0);
    }

    /// Perfectly separable data (a disjoint marker word per class) is
    /// learned exactly by both models.
    #[test]
    fn separable_data_is_learned(n in 4usize..30) {
        let mut data = Vec::new();
        for i in 0..n {
            data.push(Example {
                bow: [Sym(1), Sym(10 + (i % 4) as u32)].into_iter().collect(),
                label: true,
            });
            data.push(Example {
                bow: [Sym(2), Sym(10 + (i % 4) as u32)].into_iter().collect(),
                label: false,
            });
        }
        let nb = NaiveBayes::train(&data);
        let lr = Logistic::train_default(&data);
        prop_assert_eq!(accuracy(&nb, &data), 1.0);
        prop_assert_eq!(accuracy(&lr, &data), 1.0);
    }
}
