//! Within-machine A/B of the selection hot path through the serving
//! layer: the same 8-session fleet (the `service_throughput/fleet_of_8`
//! shape) driven under the seed's cold-serial configuration, the
//! incremental + warm-start path with serial walks, and the full default
//! path. Absolute medians from different machines or sessions are not
//! comparable; this driver exists so before/after numbers always come
//! from one process on one box.
//!
//! Run with `cargo run -p l2q-bench --release --example ab_service`.

use l2q_aspect::RelevanceOracle;
use l2q_core::L2qConfig;
use l2q_corpus::{generate, researchers_domain, CorpusConfig, EntityId};
use l2q_service::{
    BundleConfig, Scheduler, SelectorKind, ServiceMetrics, ServingBundle, SessionManager,
    SessionSpec,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn bundle(cfg: L2qConfig) -> Arc<ServingBundle> {
    let corpus = Arc::new(
        generate(
            &researchers_domain(),
            &CorpusConfig {
                n_entities: 24,
                pages_per_entity: 16,
                ..CorpusConfig::default()
            },
        )
        .unwrap(),
    );
    let oracle = RelevanceOracle::from_truth(&corpus);
    Arc::new(ServingBundle::with_oracle(
        corpus,
        Vec::new(),
        oracle,
        cfg,
        BundleConfig::default(),
    ))
}

/// One fleet pass: 8 concurrent sessions stepped round-robin to completion.
fn drive(manager: &SessionManager, scheduler: &Scheduler) {
    let aspect = manager.bundle().corpus.aspect_by_name("RESEARCH").unwrap();
    let mut open: Vec<u64> = (0..8)
        .map(|i| {
            manager
                .create(&SessionSpec {
                    entity: EntityId(3 + i),
                    aspect,
                    selector: SelectorKind::L2qbal,
                    n_queries: Some(4),
                    domain_size: 3,
                })
                .unwrap()
                .id
        })
        .collect();
    while !open.is_empty() {
        let mut still = Vec::new();
        for id in open {
            let r = scheduler.run(manager.get(id).unwrap(), 2).unwrap();
            if r.status.finished.is_none() {
                still.push(id);
            } else {
                manager.close(id).unwrap();
            }
        }
        open = still;
    }
}

fn run(label: &str, cfg: L2qConfig) {
    let metrics = Arc::new(ServiceMetrics::default());
    let manager = SessionManager::new(bundle(cfg), Duration::from_secs(300), metrics.clone());
    let scheduler = Scheduler::new(1, 64, metrics);
    drive(&manager, &scheduler); // warmup: fills the retrieval/domain caches
    let mut ts = Vec::new();
    for _ in 0..3 {
        let t0 = Instant::now();
        drive(&manager, &scheduler);
        ts.push(t0.elapsed().as_millis());
    }
    ts.sort_unstable();
    println!("{label}: median {} ms (all: {ts:?})", ts[1]);
}

fn main() {
    run("cold_serial", L2qConfig::default().cold_serial());
    run(
        "incremental+warm (serial)",
        L2qConfig::default().with_parallel_walks(false),
    );
    run("default (all on)", L2qConfig::default());
}
