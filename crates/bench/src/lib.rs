//! # l2q-bench — the benchmark harness regenerating every figure/table of
//! the paper
//!
//! One binary per experiment (see DESIGN.md §4):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig09_aspects` | Fig. 9 — aspect frequency & classifier accuracy |
//! | `fig10_validation` | Fig. 10 — domain & context awareness ablations |
//! | `fig11_domain_size` | Fig. 11 — effect of domain size |
//! | `fig12_precision_recall` | Fig. 12 — precision/recall vs #queries |
//! | `fig13_fscore` | Fig. 13 — F-score of L2QBAL vs baselines |
//! | `fig14_timing` | Fig. 14 — selection vs fetch time |
//!
//! Beyond the paper's figures:
//!
//! | Binary | Purpose |
//! |---|---|
//! | `ablation_study` | design-choice ablations (balance, λ, α, templates) |
//! | `seed_mode_study` | hard vs soft seed focusing |
//! | `probe_r0` | r0 sensitivity curve (diagnostic) |
//! | `probe_selection` | trace chosen queries per selector (diagnostic) |
//! | `probe_aspects` | per-aspect method breakdown (diagnostic) |
//!
//! All binaries accept `--quick` (small corpus, 1 split), `--paper-scale`
//! (the paper's 996/143 entities × 50 pages), `--seed N` and
//! `--splits N`. The default is a laptop-scale configuration whose
//! *orderings* reproduce the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod opts;

pub use harness::{build_domain, DomainKind, DomainSetup, SplitEval};
pub use opts::BenchOpts;
