//! Shared experiment harness: builds corpora, trains aspect classifiers,
//! materializes Y, learns domain models per split and evaluates selectors.

use crate::opts::BenchOpts;
use l2q_aspect::{train_aspect_models, AspectModel, RelevanceOracle, TrainConfig};
use l2q_core::{learn_domain, DomainModel, L2qConfig, QuerySelector};
use l2q_corpus::{cars_domain, generate, researchers_domain, Corpus, CorpusConfig, EntityId};
use l2q_eval::{evaluate_selector, make_splits, EvalContext, IdealBounds, MethodEval, Split};
use l2q_retrieval::SearchEngine;

/// Which of the paper's two domains to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DomainKind {
    /// 996 prolific DBLP researchers (paper scale).
    Researchers,
    /// 143 consumer car models (paper scale).
    Cars,
}

impl DomainKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DomainKind::Researchers => "Researcher",
            DomainKind::Cars => "Car",
        }
    }

    /// Both domains, in the paper's presentation order.
    pub fn both() -> [DomainKind; 2] {
        [DomainKind::Researchers, DomainKind::Cars]
    }
}

/// A fully prepared domain: corpus, trained classifiers and materialized Y.
pub struct DomainSetup {
    /// Which domain.
    pub kind: DomainKind,
    /// The generated corpus.
    pub corpus: std::sync::Arc<Corpus>,
    /// Per-aspect trained classifiers with held-out accuracy (Fig. 9).
    pub models: Vec<AspectModel>,
    /// Materialized Y from the classifiers (the paper's ground truth).
    pub oracle: RelevanceOracle,
}

/// Build a domain per the options: generate the corpus, train one
/// classifier per aspect and materialize the relevance oracle from them —
/// exactly the paper's experimental setup.
pub fn build_domain(kind: DomainKind, opts: &BenchOpts) -> DomainSetup {
    let spec = match kind {
        DomainKind::Researchers => researchers_domain(),
        DomainKind::Cars => cars_domain(),
    };
    let (paper_n, bench_n) = match kind {
        DomainKind::Researchers => (996, 150),
        DomainKind::Cars => (143, 100),
    };
    let config = CorpusConfig {
        n_entities: opts.entity_count(paper_n, bench_n),
        pages_per_entity: opts.pages_per_entity(),
        seed: opts.seed,
        ..CorpusConfig::default()
    };
    let corpus = std::sync::Arc::new(generate(&spec, &config).expect("corpus generation"));
    let models = train_aspect_models(&corpus, &TrainConfig::default());
    let oracle = RelevanceOracle::from_models(&corpus, &models);
    DomainSetup {
        kind,
        corpus,
        models,
        oracle,
    }
}

impl DomainSetup {
    /// The paper's evaluation splits for this corpus.
    pub fn splits(&self, opts: &BenchOpts) -> Vec<Split> {
        make_splits(self.corpus.entities.len(), opts.splits, opts.seed ^ 0x51)
    }

    /// The L2Q configuration used by the figure binaries: paper defaults
    /// with a slightly looser walk budget (converged well past ranking
    /// stability; see DESIGN.md §6).
    pub fn l2q_config(&self) -> L2qConfig {
        let mut cfg = L2qConfig::default();
        cfg.walk.max_iters = 60;
        cfg.walk.tolerance = 1e-7;
        cfg
    }
}

/// One split, prepared for evaluation: domain model, engine, ideal bounds.
pub struct SplitEval<'a> {
    setup: &'a DomainSetup,
    engine: SearchEngine,
    /// The learned domain model for this split.
    pub domain_model: DomainModel,
    /// Test entities (capped per options).
    pub test_entities: Vec<EntityId>,
    /// Validation entities.
    pub validation_entities: Vec<EntityId>,
    bounds: IdealBounds,
    cfg: L2qConfig,
}

impl<'a> SplitEval<'a> {
    /// Prepare a split: learn the domain model from its domain entities and
    /// compute the ideal bounds over its (capped) test entities.
    pub fn prepare(
        setup: &'a DomainSetup,
        split: &Split,
        opts: &BenchOpts,
        cfg: L2qConfig,
    ) -> Self {
        Self::prepare_with_engine(
            setup,
            split,
            opts,
            cfg,
            l2q_retrieval::EngineConfig::default(),
        )
    }

    /// Like [`Self::prepare`] but with an explicit engine configuration
    /// (e.g. `SeedMode::SoftAppend` for the seed-focusing ablation).
    pub fn prepare_with_engine(
        setup: &'a DomainSetup,
        split: &Split,
        opts: &BenchOpts,
        cfg: L2qConfig,
        engine_cfg: l2q_retrieval::EngineConfig,
    ) -> Self {
        let engine = SearchEngine::new(setup.corpus.clone(), engine_cfg);
        let domain_model = learn_domain(&setup.corpus, &split.domain, &setup.oracle, &cfg);
        let mut test_entities = split.test.clone();
        test_entities.truncate(opts.max_test_entities);
        let mut validation_entities = split.validation.clone();
        validation_entities.truncate(opts.max_test_entities.min(4));

        let ctx = EvalContext {
            corpus: &setup.corpus,
            engine: &engine,
            oracle: &setup.oracle,
        };
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let bounds = l2q_eval::ideal_bounds_parallel(
            &ctx,
            Some(&domain_model),
            &test_entities,
            &cfg,
            threads,
        );

        Self {
            setup,
            engine,
            domain_model,
            test_entities,
            validation_entities,
            bounds,
            cfg,
        }
    }

    /// The evaluation context.
    pub fn ctx(&self) -> EvalContext<'_> {
        EvalContext {
            corpus: &self.setup.corpus,
            engine: &self.engine,
            oracle: &self.setup.oracle,
        }
    }

    /// The L2Q configuration in force.
    pub fn cfg(&self) -> &L2qConfig {
        &self.cfg
    }

    /// Evaluate one selector over this split's test pairs, normalized
    /// against the ideal bounds. `with_domain` controls whether the
    /// selector sees the domain model (RND/P/R must not).
    pub fn evaluate(&self, selector: &mut dyn QuerySelector, with_domain: bool) -> MethodEval {
        self.evaluate_with_cfg(selector, with_domain, self.cfg)
    }

    /// Like [`Self::evaluate`] but with a per-method configuration (e.g. a
    /// cross-validated r0). The walk/candidate settings must match the
    /// split's (bounds do not depend on r0, so normalization stays valid).
    pub fn evaluate_with_cfg(
        &self,
        selector: &mut dyn QuerySelector,
        with_domain: bool,
        cfg: L2qConfig,
    ) -> MethodEval {
        evaluate_selector(
            &self.ctx(),
            if with_domain {
                Some(&self.domain_model)
            } else {
                None
            },
            &self.test_entities,
            None,
            selector,
            &cfg,
            &self.bounds,
        )
    }

    /// Parallel variant of [`Self::evaluate`]: one selector per worker
    /// thread from `factory`, entities split across threads. Identical
    /// results, lower wall-clock.
    pub fn evaluate_parallel(
        &self,
        factory: &(dyn Fn() -> Box<dyn QuerySelector> + Sync),
        with_domain: bool,
        threads: usize,
    ) -> MethodEval {
        l2q_eval::evaluate_selector_parallel(
            &self.ctx(),
            if with_domain {
                Some(&self.domain_model)
            } else {
                None
            },
            &self.test_entities,
            None,
            factory,
            &self.cfg,
            &self.bounds,
            threads,
        )
    }

    /// Cross-validate r0 on this split's validation entities for an L2Q
    /// strategy, scoring by the metric that strategy optimizes (the
    /// paper: "We selected the seed query parameter r0 … by cross
    /// validating on the validation set").
    pub fn validated_r0(&self, strategy: l2q_core::Strategy) -> f64 {
        use l2q_core::{L2qSelector, Strategy};
        let grid = [0.1, 0.3, 0.5, 0.7, 0.9];
        let score: fn(&l2q_eval::Metrics) -> f64 = match strategy {
            Strategy::Precision => |m| m.precision,
            Strategy::Recall => |m| m.recall,
            Strategy::Balanced | Strategy::Weighted { .. } => |m| m.f1,
        };
        l2q_eval::validate_r0(
            &self.ctx(),
            Some(&self.domain_model),
            &self.validation_entities,
            &mut || Box::new(L2qSelector::custom(strategy, true, true)),
            &self.cfg,
            &grid,
            score,
        )
    }

    /// Evaluate a full L2Q strategy with its cross-validated r0.
    pub fn evaluate_l2q(&self, strategy: l2q_core::Strategy) -> MethodEval {
        let r0 = self.validated_r0(strategy);
        let mut sel = l2q_core::L2qSelector::custom(strategy, true, true);
        self.evaluate_with_cfg(&mut sel, true, self.cfg.with_r0(r0))
    }
}

/// Honor `--emit-metrics PATH`: dump the global metrics registry (counters,
/// gauges, latency histograms accumulated during the run) as JSON. Called
/// by the figure binaries after their run; a no-op without the flag.
pub fn emit_metrics_if_requested(opts: &BenchOpts) {
    let Some(path) = opts.emit_metrics.as_deref() else {
        return;
    };
    let body = l2q_obs::global().render_json();
    match std::fs::write(path, &body) {
        Ok(()) => eprintln!("metrics written to {path}"),
        Err(e) => eprintln!("failed to write metrics to {path}: {e}"),
    }
}

/// Merge per-split `MethodEval`s of the same method into a cross-split
/// average (weighted by contributing pairs).
pub fn merge_evals(evals: &[MethodEval]) -> MethodEval {
    assert!(!evals.is_empty());
    let name = evals[0].name.clone();
    let n_iters = evals.iter().map(|e| e.per_iter.len()).max().unwrap_or(0);
    let mut per_iter = Vec::with_capacity(n_iters);
    for i in 0..n_iters {
        let mut raw = l2q_eval::MetricsAccumulator::new();
        let mut norm = l2q_eval::MetricsAccumulator::new();
        let mut pairs = 0usize;
        for e in evals {
            if let Some(it) = e.per_iter.get(i) {
                // Weight by pair count: re-expand the mean.
                for _ in 0..it.pairs {
                    raw.push(it.raw);
                    norm.push(it.normalized);
                }
                pairs += it.pairs;
            }
        }
        per_iter.push(l2q_eval::IterStats {
            n_queries: i + 1,
            raw: raw.mean(),
            normalized: norm.mean(),
            pairs,
        });
    }
    MethodEval {
        name,
        per_iter,
        selection_time: evals.iter().map(|e| e.selection_time).sum(),
        runs: evals.iter().map(|e| e.runs).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2q_baselines::RndSelector;

    fn tiny_opts() -> BenchOpts {
        BenchOpts {
            quick: true,
            splits: 1,
            max_test_entities: 3,
            entities: Some(24),
            ..BenchOpts::default()
        }
    }

    #[test]
    fn harness_builds_and_evaluates_end_to_end() {
        let opts = tiny_opts();
        let setup = build_domain(DomainKind::Researchers, &opts);
        assert_eq!(setup.corpus.entities.len(), 24);
        assert_eq!(setup.models.len(), 7);

        let splits = setup.splits(&opts);
        assert_eq!(splits.len(), 1);
        let se = SplitEval::prepare(&setup, &splits[0], &opts, setup.l2q_config());
        assert!(!se.test_entities.is_empty());
        assert!(se.domain_model.query_count() > 0);

        let mut sel = RndSelector::new(1);
        let eval = se.evaluate(&mut sel, false);
        assert_eq!(eval.per_iter.len(), se.cfg().n_queries);
        assert!(eval.per_iter[0].pairs > 0);
    }

    #[test]
    fn merge_weights_by_pairs() {
        use l2q_eval::{IterStats, MethodEval, Metrics};
        use std::time::Duration;
        let mk = |p: f64, pairs: usize| MethodEval {
            name: "X".into(),
            per_iter: vec![IterStats {
                n_queries: 1,
                raw: Metrics::new(p, p),
                normalized: Metrics::new(p, p),
                pairs,
            }],
            selection_time: Duration::from_millis(1),
            runs: pairs,
        };
        let merged = merge_evals(&[mk(1.0, 1), mk(0.0, 3)]);
        assert!((merged.per_iter[0].normalized.precision - 0.25).abs() < 1e-12);
        assert_eq!(merged.per_iter[0].pairs, 4);
        assert_eq!(merged.runs, 4);
    }
}
