//! Fig. 11 — effect of domain size on the full approaches.
//!
//! Reproduces the paper's curves: normalized precision of L2QP and
//! normalized recall of L2QR as the fraction of domain entities used in
//! the domain phase grows through 0%, 5%, 10%, 25%, 100%. Expected shape:
//! monotone-ish improvement, with the steepest gain between 0% and 5% —
//! "even a small number of domain entities can be quite useful".

use l2q_bench::harness::merge_evals;
use l2q_bench::{build_domain, BenchOpts, DomainKind, SplitEval};
use l2q_core::Strategy;
use l2q_eval::{render_table, Series};

const FRACTIONS: [f64; 5] = [0.0, 0.05, 0.10, 0.25, 1.0];

fn main() {
    let opts = BenchOpts::from_args();
    println!("Fig. 11 — effect of domain size on full approaches");
    println!(
        "(domain-entity fraction 0%..100%; 3 queries; {} split(s))\n",
        opts.splits
    );

    let x_labels: Vec<String> = FRACTIONS
        .iter()
        .map(|f| format!("{:.0}%", f * 100.0))
        .collect();

    let mut prec_rows: Vec<Series> = Vec::new();
    let mut rec_rows: Vec<Series> = Vec::new();

    for kind in DomainKind::both() {
        let setup = build_domain(kind, &opts);
        let cfg = setup.l2q_config();
        let splits = setup.splits(&opts);

        let mut prec_values = Vec::with_capacity(FRACTIONS.len());
        let mut rec_values = Vec::with_capacity(FRACTIONS.len());
        for &fraction in &FRACTIONS {
            let evals_p: Vec<_> = splits
                .iter()
                .map(|s| {
                    let sub = s.with_domain_fraction(fraction);
                    let se = SplitEval::prepare(&setup, &sub, &opts, cfg);
                    se.evaluate_l2q(Strategy::Precision)
                })
                .collect();
            let evals_r: Vec<_> = splits
                .iter()
                .map(|s| {
                    let sub = s.with_domain_fraction(fraction);
                    let se = SplitEval::prepare(&setup, &sub, &opts, cfg);
                    se.evaluate_l2q(Strategy::Recall)
                })
                .collect();
            prec_values.push(
                merge_evals(&evals_p)
                    .at(cfg.n_queries)
                    .map(|it| it.normalized.precision)
                    .unwrap_or(0.0),
            );
            rec_values.push(
                merge_evals(&evals_r)
                    .at(cfg.n_queries)
                    .map(|it| it.normalized.recall)
                    .unwrap_or(0.0),
            );
        }
        prec_rows.push(Series {
            label: kind.name().to_string(),
            values: prec_values,
        });
        rec_rows.push(Series {
            label: kind.name().to_string(),
            values: rec_values,
        });
    }

    println!(
        "{}",
        render_table("(a) Precision for L2QP", &x_labels, &prec_rows)
    );
    println!(
        "{}",
        render_table("(b) Recall for L2QR", &x_labels, &rec_rows)
    );

    l2q_bench::harness::emit_metrics_if_requested(&opts);
}
