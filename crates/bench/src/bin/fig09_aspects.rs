//! Fig. 9 — tested entity aspects: paragraph frequency and aspect-
//! classifier accuracy for both domains.
//!
//! The paper's table reports, per domain, the seven aspects with the
//! number of paragraphs about each (heavily skewed: RESEARCH 107K vs
//! EMPLOYMENT 3K; DRIVING 16K vs RELIABILITY/SAFETY 2K) and the held-out
//! accuracy of the per-aspect classifier (0.85–0.99), whose output the
//! rest of the evaluation treats as ground truth.

use l2q_bench::{build_domain, BenchOpts, DomainKind};

fn main() {
    let opts = BenchOpts::from_args();
    println!("Fig. 9 — tested entity aspects and accuracy of aspect classifiers\n");

    for kind in DomainKind::both() {
        let setup = build_domain(kind, &opts);
        let freq = setup.corpus.paragraph_frequency();
        println!(
            "{} ({} entities, {} pages, {} paragraphs)",
            kind.name(),
            setup.corpus.entities.len(),
            setup.corpus.pages.len(),
            setup.corpus.paragraph_count()
        );
        println!(
            "{:14} {:>10} {:>10} {:>8}",
            "Aspect", "Frequency", "Accuracy", "F1"
        );
        for model in &setup.models {
            let name = setup.corpus.aspect_name(model.aspect);
            println!(
                "{:14} {:>10} {:>10.2} {:>8.2}",
                name,
                freq[model.aspect.index()],
                model.accuracy,
                model.prf.f1
            );
        }
        let oracle_agreement = setup.oracle.truth_agreement(&setup.corpus);
        println!(
            "(materialized Y agrees with generator truth on {:.1}% of (aspect, page) pairs)\n",
            100.0 * oracle_agreement
        );
    }

    l2q_bench::harness::emit_metrics_if_requested(&opts);
}
