//! Fig. 13 — F-scores of the balanced strategy L2QBAL vs LM, AQ, HR, MQ
//! across 2–5 queries, on both domains.
//!
//! L2QBAL "select\[s\] queries based on the geometric mean of the collective
//! precision and recall". Expected shape: L2QBAL consistently above every
//! baseline; the paper reports +16% over the best algorithmic baseline and
//! +10% over the manual one in average F-score — the headline numbers.

use l2q_baselines::{AqSelector, HrSelector, LmSelector, MqSelector};
use l2q_bench::harness::merge_evals;
use l2q_bench::{build_domain, BenchOpts, DomainKind, SplitEval};
use l2q_core::{QuerySelector, Strategy};
use l2q_eval::{render_table, MethodEval, Series};

const MAX_QUERIES: usize = 5;

type Factory = Box<dyn Fn() -> Box<dyn QuerySelector> + Sync>;

fn main() {
    let opts = BenchOpts::from_args();
    println!("Fig. 13 — comparison of F-scores with the balanced strategy");
    println!("(2..5 queries; normalized; {} split(s))\n", opts.splits);

    let x_labels: Vec<String> = (2..=MAX_QUERIES).map(|n| n.to_string()).collect();
    let mut headline: Vec<(String, f64, f64, f64)> = Vec::new();

    for kind in DomainKind::both() {
        let setup = build_domain(kind, &opts);
        let mut cfg = setup.l2q_config();
        cfg.n_queries = MAX_QUERIES;
        let splits_raw = setup.splits(&opts);
        let splits: Vec<SplitEval<'_>> = splits_raw
            .iter()
            .map(|s| SplitEval::prepare(&setup, s, &opts, cfg))
            .collect();

        let l2qbal = merge_evals(
            &splits
                .iter()
                .map(|se| se.evaluate_l2q(Strategy::Balanced))
                .collect::<Vec<_>>(),
        );

        let baselines: Vec<(bool, Factory)> = vec![
            (false, Box::new(|| Box::new(LmSelector::new()))),
            (false, Box::new(|| Box::new(AqSelector::new()))),
            (true, Box::new(|| Box::new(HrSelector::new()))),
            (false, Box::new(|| Box::new(MqSelector::new()))),
        ];
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let mut evals: Vec<MethodEval> = vec![l2qbal];
        for (with_domain, factory) in &baselines {
            evals.push(merge_evals(
                &splits
                    .iter()
                    .map(|se| se.evaluate_parallel(factory.as_ref(), *with_domain, threads))
                    .collect::<Vec<_>>(),
            ));
        }

        let rows: Vec<Series> = evals
            .iter()
            .map(|e| Series {
                label: e.name.clone(),
                values: e.per_iter[1..].iter().map(|it| it.normalized.f1).collect(),
            })
            .collect();
        println!(
            "{}",
            render_table(
                &format!("{} — normalized F-score", kind.name()),
                &x_labels,
                &rows
            )
        );

        // Headline: average F over 2..5 queries.
        let avg = |e: &MethodEval| {
            let v: Vec<f64> = e.per_iter[1..].iter().map(|it| it.normalized.f1).collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let bal = avg(&evals[0]);
        let best_algo = evals[1..4].iter().map(&avg).fold(f64::MIN, f64::max);
        let mq = avg(&evals[4]);
        headline.push((kind.name().to_string(), bal, best_algo, mq));
    }

    println!("Headline (average normalized F over 2..5 queries):");
    for (domain, bal, best_algo, mq) in &headline {
        println!(
            "  {domain}: L2QBAL={bal:.4}  best algorithmic baseline={best_algo:.4} \
             (+{:.0}%)  MQ={mq:.4} (+{:.0}%)",
            100.0 * (bal / best_algo - 1.0),
            100.0 * (bal / mq - 1.0),
        );
    }
    let n = headline.len() as f64;
    let (bal, algo, mq) = headline.iter().fold((0.0, 0.0, 0.0), |acc, h| {
        (acc.0 + h.1 / n, acc.1 + h.2 / n, acc.2 + h.3 / n)
    });
    println!(
        "  overall: L2QBAL beats best algorithmic baseline by {:.0}% (paper: 16%) \
         and MQ by {:.0}% (paper: 10%)",
        100.0 * (bal / algo - 1.0),
        100.0 * (bal / mq - 1.0),
    );

    l2q_bench::harness::emit_metrics_if_requested(&opts);
}
