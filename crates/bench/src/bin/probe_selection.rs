//! Development probe: trace the queries chosen by competing selectors for
//! a few entity–aspect runs, with the actual outcome of each fired query.

use l2q_baselines::DomainQuerySelector;
use l2q_bench::{build_domain, BenchOpts, DomainKind, SplitEval};
use l2q_core::{Harvester, L2qSelector, QuerySelector};
use l2q_corpus::{AspectId, PageId};
use l2q_eval::page_metrics;
use l2q_retrieval::SearchEngine;

fn trace(
    setup: &l2q_bench::DomainSetup,
    se: &SplitEval<'_>,
    aspect: AspectId,
    label: &str,
    sel: &mut dyn QuerySelector,
    entity: l2q_corpus::EntityId,
    engine: &SearchEngine,
) {
    let corpus = &setup.corpus;
    let harvester = Harvester {
        corpus,
        engine,
        oracle: &setup.oracle,
        domain: Some(&se.domain_model),
        cfg: *se.cfg(),
    };
    let rec = harvester.run(entity, aspect, sel);
    print!("  {label}: ");
    for it in &rec.iterations {
        let results: Vec<PageId> = engine.search(entity, it.query.words());
        let rel = results
            .iter()
            .filter(|&&p| setup.oracle.is_relevant(aspect, p))
            .count();
        print!(
            "[{} -> {}/{} new {}] ",
            it.query.render(&corpus.symbols),
            rel,
            results.len(),
            it.new_pages.len()
        );
    }
    let m = page_metrics(corpus, &setup.oracle, entity, aspect, &rec.gathered).unwrap();
    println!(" => P={:.2} R={:.2}", m.precision, m.recall);
}

fn main() {
    let opts = BenchOpts::from_args();
    for (kind, aspect_name) in [
        (DomainKind::Researchers, "RESEARCH"),
        (DomainKind::Cars, "DRIVING"),
    ] {
        let setup = build_domain(kind, &opts);
        let cfg = setup.l2q_config();
        let splits = setup.splits(&opts);
        let se = SplitEval::prepare(&setup, &splits[0], &opts, cfg);
        let engine = SearchEngine::with_defaults(setup.corpus.clone());
        let aspect = setup.corpus.aspect_by_name(aspect_name).unwrap();

        for &entity in se.test_entities.iter().take(2) {
            println!(
                "== {} entity {} ({}) aspect {aspect_name}: {} relevant of {} ==",
                kind.name(),
                entity.0,
                setup.corpus.entity(entity).name,
                setup.oracle.relevant_count(&setup.corpus, entity, aspect),
                setup.corpus.pages_of(entity).len(),
            );
            trace(
                &setup,
                &se,
                aspect,
                "P+t ",
                &mut L2qSelector::precision_templates(),
                entity,
                &engine,
            );
            trace(
                &setup,
                &se,
                aspect,
                "L2QP",
                &mut L2qSelector::l2qp(),
                entity,
                &engine,
            );
            trace(
                &setup,
                &se,
                aspect,
                "R+q ",
                &mut DomainQuerySelector::recall(),
                entity,
                &engine,
            );
            trace(
                &setup,
                &se,
                aspect,
                "R+t ",
                &mut L2qSelector::recall_templates(),
                entity,
                &engine,
            );
            trace(
                &setup,
                &se,
                aspect,
                "L2QR",
                &mut L2qSelector::l2qr(),
                entity,
                &engine,
            );
        }
    }

    l2q_bench::harness::emit_metrics_if_requested(&opts);
}
