//! Ablation study over the design choices DESIGN.md §5 calls out:
//!
//! * `page_template_balance` — the paper's "balanced influence" (0.5)
//!   between a query's page-side and template-side estimates, vs leaning
//!   on either side;
//! * `missing_side_is_zero` — whether a query lacking one neighbor class
//!   is damped (the plain reading of "taking their average") or the
//!   present side is renormalized to full weight;
//! * `TemplateMode` — one maximal-abstraction template per query vs every
//!   subset of typed positions;
//! * λ — the domain-adaptation strength (paper: 10).
//!
//! For each variant, reports L2QBAL's normalized F at the default 3-query
//! budget on the researchers domain.

use l2q_bench::{build_domain, BenchOpts, DomainKind, SplitEval};
use l2q_core::{L2qSelector, TemplateMode};

fn main() {
    let opts = BenchOpts::from_args();
    let setup = build_domain(DomainKind::Researchers, &opts);
    let base_cfg = setup.l2q_config();
    let splits = setup.splits(&opts);

    println!("Ablation study — L2QBAL normalized F on researchers, 3 queries\n");
    println!("{:44} {:>8}", "variant", "F");

    let run = |label: &str, cfg: l2q_core::L2qConfig| {
        let mut f_sum = 0.0f64;
        let mut n = 0.0f64;
        for split in &splits {
            let se = SplitEval::prepare(&setup, split, &opts, cfg);
            let mut sel = L2qSelector::l2qbal();
            let eval = se.evaluate(&mut sel, true);
            if let Some(it) = eval.at(cfg.n_queries) {
                f_sum += it.normalized.f1;
                n += 1.0;
            }
        }
        println!("{:44} {:>8.4}", label, f_sum / n.max(1.0));
    };

    run("baseline (paper defaults)", base_cfg);

    for balance in [0.0, 0.25, 0.75, 1.0] {
        let mut cfg = base_cfg;
        cfg.walk.page_template_balance = balance;
        run(&format!("page/template balance = {balance}"), cfg);
    }

    {
        let mut cfg = base_cfg;
        cfg.walk.missing_side_is_zero = false;
        run("missing side renormalized (not damped)", cfg);
    }

    {
        let mut cfg = base_cfg;
        cfg.template_mode = TemplateMode::AllSubsets;
        run("templates: all typed-position subsets", cfg);
    }

    for lambda in [1.0, 3.0, 30.0] {
        let cfg = base_cfg.with_lambda(lambda);
        run(&format!("lambda = {lambda}"), cfg);
    }

    for alpha in [0.05, 0.3, 0.5] {
        let mut cfg = base_cfg;
        cfg.walk.alpha = alpha;
        run(&format!("alpha = {alpha}"), cfg);
    }

    l2q_bench::harness::emit_metrics_if_requested(&opts);
}
