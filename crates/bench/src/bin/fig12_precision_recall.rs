//! Fig. 12 — precision and recall vs. number of queries (2–5) for L2QP,
//! L2QR and the independent baselines LM, AQ, HR, MQ, on both domains.
//!
//! Expected shape (paper Sect. VI-C): L2QP best in precision everywhere
//! (beating the best algorithmic baseline by ~28% and MQ by ~14% on
//! average), L2QR best in recall (by ~11% and ~14%); L2QP/MQ precision
//! drifts slightly down with more queries as the pool of relevant pages
//! saturates.

use l2q_baselines::{AqSelector, HrSelector, LmSelector, MqSelector};
use l2q_bench::harness::merge_evals;
use l2q_bench::{build_domain, BenchOpts, DomainKind, SplitEval};
use l2q_core::{QuerySelector, Strategy};
use l2q_eval::{render_table, MethodEval, Series};

const MAX_QUERIES: usize = 5;

type Factory = Box<dyn Fn() -> Box<dyn QuerySelector> + Sync>;

fn main() {
    let opts = BenchOpts::from_args();
    println!("Fig. 12 — comparison of precision and recall vs number of queries");
    println!("(2..5 queries; normalized; {} split(s))\n", opts.splits);

    let x_labels: Vec<String> = (2..=MAX_QUERIES).map(|n| n.to_string()).collect();

    for kind in DomainKind::both() {
        let setup = build_domain(kind, &opts);
        let mut cfg = setup.l2q_config();
        cfg.n_queries = MAX_QUERIES;
        let splits_raw = setup.splits(&opts);
        let splits: Vec<SplitEval<'_>> = splits_raw
            .iter()
            .map(|s| SplitEval::prepare(&setup, s, &opts, cfg))
            .collect();

        // L2QP / L2QR with cross-validated r0.
        let l2qp = merge_evals(
            &splits
                .iter()
                .map(|se| se.evaluate_l2q(Strategy::Precision))
                .collect::<Vec<_>>(),
        );
        let l2qr = merge_evals(
            &splits
                .iter()
                .map(|se| se.evaluate_l2q(Strategy::Recall))
                .collect::<Vec<_>>(),
        );

        // Baselines (HR gets the domain model — "only HR exploits domain
        // data"; LM/AQ/MQ do not).
        let baselines: Vec<(bool, Factory)> = vec![
            (false, Box::new(|| Box::new(LmSelector::new()))),
            (false, Box::new(|| Box::new(AqSelector::new()))),
            (true, Box::new(|| Box::new(HrSelector::new()))),
            (false, Box::new(|| Box::new(MqSelector::new()))),
        ];
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let mut evals: Vec<MethodEval> = vec![l2qp, l2qr];
        for (with_domain, factory) in &baselines {
            let merged = merge_evals(
                &splits
                    .iter()
                    .map(|se| se.evaluate_parallel(factory.as_ref(), *with_domain, threads))
                    .collect::<Vec<_>>(),
            );
            evals.push(merged);
        }

        let series = |metric: fn(&l2q_eval::IterStats) -> f64| -> Vec<Series> {
            evals
                .iter()
                .map(|e| Series {
                    label: e.name.clone(),
                    values: e.per_iter[1..].iter().map(metric).collect(),
                })
                .collect()
        };

        println!(
            "{}",
            render_table(
                &format!("(a) {} — normalized precision", kind.name()),
                &x_labels,
                &series(|it| it.normalized.precision)
            )
        );
        println!(
            "{}",
            render_table(
                &format!("(b) {} — normalized recall", kind.name()),
                &x_labels,
                &series(|it| it.normalized.recall)
            )
        );
    }

    l2q_bench::harness::emit_metrics_if_requested(&opts);
}
