//! Seed-focusing ablation (extension; DESIGN.md §5).
//!
//! The paper assumes the seed query "uniquely identifies" the target
//! entity, which our default engine realizes as a hard scope to the
//! entity's corpus slice. On a real search engine the seed is merely
//! *appended* to every query and other entities' pages can leak into the
//! results. This study compares the two modes for L2QBAL and MQ: the
//! *shape* to expect is a drop in absolute precision under SoftAppend
//! (leaked pages are irrelevant by definition) while the method ordering
//! is preserved — query selection is robust to the focusing mechanism.

use l2q_baselines::MqSelector;
use l2q_bench::harness::merge_evals;
use l2q_bench::{build_domain, BenchOpts, DomainKind, SplitEval};
use l2q_core::L2qSelector;
use l2q_retrieval::{EngineConfig, SeedMode};

fn main() {
    let opts = BenchOpts::from_args();
    println!("Seed-focusing ablation — HardFilter vs SoftAppend (3 queries)\n");
    println!(
        "{:12} {:14} {:>10} {:>10} {:>10}",
        "Domain", "mode", "L2QBAL F", "MQ F", "pairs"
    );

    for kind in DomainKind::both() {
        let setup = build_domain(kind, &opts);
        let cfg = setup.l2q_config();
        let splits = setup.splits(&opts);

        for (label, mode) in [
            ("HardFilter", SeedMode::HardFilter),
            ("SoftAppend", SeedMode::SoftAppend),
        ] {
            let engine_cfg = EngineConfig {
                seed_mode: mode,
                ..EngineConfig::default()
            };
            let mut bal_evals = Vec::new();
            let mut mq_evals = Vec::new();
            for split in &splits {
                let se = SplitEval::prepare_with_engine(&setup, split, &opts, cfg, engine_cfg);
                let mut bal = L2qSelector::l2qbal();
                bal_evals.push(se.evaluate(&mut bal, true));
                let mut mq = MqSelector::new();
                mq_evals.push(se.evaluate(&mut mq, false));
            }
            let bal = merge_evals(&bal_evals);
            let mq = merge_evals(&mq_evals);
            let at = |e: &l2q_eval::MethodEval| {
                e.at(cfg.n_queries)
                    .map(|it| (it.normalized.f1, it.pairs))
                    .unwrap_or((0.0, 0))
            };
            let (bf, pairs) = at(&bal);
            let (mf, _) = at(&mq);
            println!(
                "{:12} {:14} {:>10.4} {:>10.4} {:>10}",
                kind.name(),
                label,
                bf,
                mf,
                pairs
            );
        }
    }

    l2q_bench::harness::emit_metrics_if_requested(&opts);
}
