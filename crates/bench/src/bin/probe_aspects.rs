//! Development probe: per-aspect normalized precision/recall of the
//! Fig. 10 methods on the researchers domain, plus P+q's fired queries
//! and hit counts, to understand where each method's score comes from.

use l2q_baselines::DomainQuerySelector;
use l2q_bench::{build_domain, BenchOpts, DomainKind, SplitEval};
use l2q_core::{Harvester, L2qSelector, QuerySelector};
use l2q_eval::{evaluate_selector, ideal_bounds, page_metrics};

fn main() {
    let opts = BenchOpts::from_args();
    let setup = build_domain(DomainKind::Researchers, &opts);
    let cfg = setup.l2q_config();
    let splits = setup.splits(&opts);
    let se = SplitEval::prepare(&setup, &splits[0], &opts, cfg);
    let corpus = &setup.corpus;
    let ctx = se.ctx();

    // Per-aspect evaluation.
    println!("per-aspect normalized precision (3 queries):");
    let bounds = ideal_bounds(&ctx, Some(&se.domain_model), &se.test_entities, &cfg);
    for aspect in corpus.aspects() {
        let aspects = [aspect];
        let mut row = format!("{:14}", corpus.aspect_name(aspect));
        for (label, with_domain, mut sel) in [
            (
                "P",
                false,
                Box::new(L2qSelector::precision_only()) as Box<dyn QuerySelector>,
            ),
            ("P+q", true, Box::new(DomainQuerySelector::precision())),
            ("P+t", true, Box::new(L2qSelector::precision_templates())),
            ("L2QP", true, Box::new(L2qSelector::l2qp())),
        ] {
            let _ = label;
            let dm = if with_domain {
                Some(&se.domain_model)
            } else {
                None
            };
            let eval = evaluate_selector(
                &ctx,
                dm,
                &se.test_entities,
                Some(&aspects),
                sel.as_mut(),
                &cfg,
                &bounds,
            );
            row.push_str(&format!(
                " {:>8.3}",
                eval.at(cfg.n_queries)
                    .map(|it| it.normalized.precision)
                    .unwrap_or(f64::NAN)
            ));
        }
        println!("{row}   (P, P+q, P+t, L2QP)");
    }

    // What does P+q fire?
    println!("\nP+q fired queries (entity 0 of test set, all aspects):");
    let engine = l2q_retrieval::SearchEngine::with_defaults(setup.corpus.clone());
    let entity = se.test_entities[0];
    for aspect in corpus.aspects() {
        let harvester = Harvester {
            corpus,
            engine: &engine,
            oracle: &setup.oracle,
            domain: Some(&se.domain_model),
            cfg,
        };
        let mut sel = DomainQuerySelector::precision();
        let rec = harvester.run(entity, aspect, &mut sel);
        print!("  {:14}", corpus.aspect_name(aspect));
        for it in &rec.iterations {
            print!(
                " [{} +{}]",
                it.query.render(&corpus.symbols),
                it.new_pages.len()
            );
        }
        let m = page_metrics(corpus, &setup.oracle, entity, aspect, &rec.gathered);
        let seed = page_metrics(corpus, &setup.oracle, entity, aspect, &rec.seed_results);
        println!(
            "  seedP={:.2} P={:.2}",
            seed.map(|m| m.precision).unwrap_or(f64::NAN),
            m.map(|m| m.precision).unwrap_or(f64::NAN)
        );
    }

    l2q_bench::harness::emit_metrics_if_requested(&opts);
}
