//! Development probe: sensitivity of L2QP/L2QR to the seed recall
//! parameter r0 (the paper cross-validates it; this prints the validation
//! curve so we can pick a sane default).

use l2q_bench::{build_domain, BenchOpts, DomainKind, SplitEval};
use l2q_core::L2qSelector;

fn main() {
    let opts = BenchOpts::from_args();
    for kind in DomainKind::both() {
        let setup = build_domain(kind, &opts);
        let splits = setup.splits(&opts);
        println!("== {} ==", kind.name());
        for r0 in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let cfg = setup.l2q_config().with_r0(r0);
            let mut p_sum = 0.0;
            let mut r_sum = 0.0;
            let mut b_sum = 0.0;
            let mut n = 0.0;
            for split in &splits {
                let se = SplitEval::prepare(&setup, split, &opts, cfg);
                let mut l2qp = L2qSelector::l2qp();
                let mut l2qr = L2qSelector::l2qr();
                let mut l2qb = L2qSelector::l2qbal();
                let ep = se.evaluate(&mut l2qp, true);
                let er = se.evaluate(&mut l2qr, true);
                let eb = se.evaluate(&mut l2qb, true);
                p_sum += ep.at(cfg.n_queries).unwrap().normalized.precision;
                r_sum += er.at(cfg.n_queries).unwrap().normalized.recall;
                b_sum += eb.at(cfg.n_queries).unwrap().normalized.f1;
                n += 1.0;
            }
            println!(
                "r0={r0:.1}  L2QP prec={:.4}  L2QR rec={:.4}  L2QBAL f1={:.4}",
                p_sum / n,
                r_sum / n,
                b_sum / n
            );
        }
    }

    l2q_bench::harness::emit_metrics_if_requested(&opts);
}
