//! Fig. 14 — average time cost per query (seconds): selection vs fetch.
//!
//! The paper reports per-query *selection* time (CPU-bound, 1.4–2.4 s on
//! a 2.2 GHz core for their corpus scale) against *fetch* time (I/O-bound,
//! ~8–18 s of remote downloading) and concludes selection "only impose\[s\]
//! a minor overhead over the fetch time". Our selection is measured
//! directly; fetch is simulated with the paper's reported per-domain
//! latency since there is no remote server in the loop (DESIGN.md §2).

use l2q_bench::harness::merge_evals;
use l2q_bench::{build_domain, BenchOpts, DomainKind, SplitEval};
use l2q_core::{L2qSelector, Strategy};

/// Paper-reported fetch latency per query (seconds): researchers ~18,
/// cars ~8.
fn simulated_fetch_seconds(kind: DomainKind) -> f64 {
    match kind {
        DomainKind::Researchers => 18.0,
        DomainKind::Cars => 8.0,
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    println!("Fig. 14 — average time cost per query (seconds)");
    println!("(selection measured; fetch simulated at the paper's reported latency)\n");
    println!(
        "{:12} {:>10} {:>10} {:>10} {:>12}",
        "Domain", "L2QP", "L2QR", "L2QBAL", "Fetch (sim)"
    );

    for kind in DomainKind::both() {
        let setup = build_domain(kind, &opts);
        let cfg = setup.l2q_config();
        let splits = setup.splits(&opts);

        let mut cols = Vec::new();
        for strategy in [Strategy::Precision, Strategy::Recall, Strategy::Balanced] {
            let evals: Vec<_> = splits
                .iter()
                .map(|s| {
                    let se = SplitEval::prepare(&setup, s, &opts, cfg);
                    let mut sel = L2qSelector::custom(strategy, true, true);
                    se.evaluate(&mut sel, true)
                })
                .collect();
            let merged = merge_evals(&evals);
            cols.push(merged.selection_time_per_query().as_secs_f64());
        }

        println!(
            "{:12} {:>10.4} {:>10.4} {:>10.4} {:>12.1}",
            kind.name(),
            cols[0],
            cols[1],
            cols[2],
            simulated_fetch_seconds(kind),
        );
    }
    println!(
        "\nShape check: selection is a minor overhead relative to fetch, as in the paper.\n\
         (Absolute numbers are far below the paper's 1.4–2.4 s — our corpus slice per\n\
         entity is smaller and 2026 hardware is faster than a 2.2 GHz core from 2016.)"
    );

    l2q_bench::harness::emit_metrics_if_requested(&opts);
}
