//! Fig. 10 — validation of domain and context awareness.
//!
//! Reproduces the paper's bar chart: normalized precision of
//! {RND, P, P+q, P+t, L2QP} and normalized recall of
//! {RND, R, R+q, R+t, L2QR} on both domains at the default 3 queries.
//!
//! Expected shape (paper Sect. VI-B): P+t > P (templates help),
//! P+t > P+q (templates beat raw domain queries under entity variation),
//! L2QP > P+t (context helps); mirrored for recall.

use l2q_baselines::{DomainQuerySelector, RndSelector};
use l2q_bench::harness::merge_evals;
use l2q_bench::{build_domain, BenchOpts, DomainKind, SplitEval};
use l2q_core::{L2qSelector, QuerySelector, Strategy};
use l2q_eval::{render_table, MethodEval, Series};

type Factory = Box<dyn Fn() -> Box<dyn QuerySelector> + Sync>;

/// How a method is run per split.
enum Method {
    /// Fresh selector per split, with/without domain model.
    Plain(bool, Factory),
    /// Full L2Q with per-split cross-validated r0.
    L2q(Strategy),
}

/// Evaluate one method across all splits and return its merged result.
fn run_method(splits: &[SplitEval<'_>], method: &Method) -> MethodEval {
    let per_split: Vec<MethodEval> = splits
        .iter()
        .map(|se| match method {
            Method::Plain(with_domain, factory) => {
                let threads = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4);
                se.evaluate_parallel(factory.as_ref(), *with_domain, threads)
            }
            Method::L2q(strategy) => se.evaluate_l2q(*strategy),
        })
        .collect();
    merge_evals(&per_split)
}

fn main() {
    let opts = BenchOpts::from_args();
    println!("Fig. 10 — validation of domain and context awareness");
    println!(
        "(normalized against the ideal solution; 3 queries; {} split(s))\n",
        opts.splits
    );

    for kind in DomainKind::both() {
        let setup = build_domain(kind, &opts);
        let cfg = setup.l2q_config();
        let raw_splits = setup.splits(&opts);
        let splits: Vec<SplitEval<'_>> = raw_splits
            .iter()
            .map(|s| SplitEval::prepare(&setup, s, &opts, cfg))
            .collect();

        let precision_side: Vec<(&str, Method)> = vec![
            (
                "RND",
                Method::Plain(false, Box::new(|| Box::new(RndSelector::new(11)))),
            ),
            (
                "P",
                Method::Plain(false, Box::new(|| Box::new(L2qSelector::precision_only()))),
            ),
            (
                "P+q",
                Method::Plain(
                    true,
                    Box::new(|| Box::new(DomainQuerySelector::precision())),
                ),
            ),
            (
                "P+t",
                Method::Plain(
                    true,
                    Box::new(|| Box::new(L2qSelector::precision_templates())),
                ),
            ),
            ("L2QP", Method::L2q(Strategy::Precision)),
        ];
        let recall_side: Vec<(&str, Method)> = vec![
            (
                "RND",
                Method::Plain(false, Box::new(|| Box::new(RndSelector::new(11)))),
            ),
            (
                "R",
                Method::Plain(false, Box::new(|| Box::new(L2qSelector::recall_only()))),
            ),
            (
                "R+q",
                Method::Plain(true, Box::new(|| Box::new(DomainQuerySelector::recall()))),
            ),
            (
                "R+t",
                Method::Plain(true, Box::new(|| Box::new(L2qSelector::recall_templates()))),
            ),
            ("L2QR", Method::L2q(Strategy::Recall)),
        ];

        let mut prec_rows = Vec::new();
        for (label, method) in &precision_side {
            let merged = run_method(&splits, method);
            let at = merged.at(cfg.n_queries).expect("evaluated budget");
            prec_rows.push(Series {
                label: (*label).to_string(),
                values: vec![at.normalized.precision],
            });
        }
        let mut rec_rows = Vec::new();
        for (label, method) in &recall_side {
            let merged = run_method(&splits, method);
            let at = merged.at(cfg.n_queries).expect("evaluated budget");
            rec_rows.push(Series {
                label: (*label).to_string(),
                values: vec![at.normalized.recall],
            });
        }

        println!(
            "{}",
            render_table(
                &format!("(a) {} — normalized precision", kind.name()),
                &["precision".into()],
                &prec_rows
            )
        );
        println!(
            "{}",
            render_table(
                &format!("(b) {} — normalized recall", kind.name()),
                &["recall".into()],
                &rec_rows
            )
        );
    }

    l2q_bench::harness::emit_metrics_if_requested(&opts);
}
