//! Command-line options shared by the figure binaries.

/// Parsed command-line options.
#[derive(Clone, Debug)]
pub struct BenchOpts {
    /// Tiny configuration for smoke runs.
    pub quick: bool,
    /// The paper's corpus scale (996 researchers / 143 cars × 50 pages).
    pub paper_scale: bool,
    /// Master seed.
    pub seed: u64,
    /// Number of random splits (paper: 10).
    pub splits: usize,
    /// Cap on test entities evaluated per split (bounds wall-clock; the
    /// paper evaluates all, which `--paper-scale` restores).
    pub max_test_entities: usize,
    /// Override the entity count of both domains.
    pub entities: Option<usize>,
    /// Emit results as JSON instead of tables.
    pub json: bool,
    /// Dump the global metrics registry as JSON to this path after a run.
    pub emit_metrics: Option<String>,
}

impl Default for BenchOpts {
    fn default() -> Self {
        Self {
            quick: false,
            paper_scale: false,
            seed: 42,
            splits: 3,
            max_test_entities: 10,
            entities: None,
            json: false,
            emit_metrics: None,
        }
    }
}

impl BenchOpts {
    /// Parse from `std::env::args` (skipping the binary name). Unknown
    /// flags abort with a usage message.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut opts = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => {
                    opts.quick = true;
                    opts.splits = 1;
                    opts.max_test_entities = 6;
                }
                "--paper-scale" => {
                    opts.paper_scale = true;
                    opts.splits = 10;
                    opts.max_test_entities = usize::MAX;
                }
                "--json" => opts.json = true,
                "--seed" => opts.seed = Self::value(&mut it, "--seed"),
                "--splits" => opts.splits = Self::value(&mut it, "--splits"),
                "--max-test" => opts.max_test_entities = Self::value(&mut it, "--max-test"),
                "--entities" => opts.entities = Some(Self::value(&mut it, "--entities")),
                "--emit-metrics" => {
                    opts.emit_metrics = Some(Self::value(&mut it, "--emit-metrics"))
                }
                "--help" | "-h" => {
                    eprintln!("{}", Self::usage());
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag: {other}\n{}", Self::usage());
                    std::process::exit(2);
                }
            }
        }
        opts
    }

    fn value<T: std::str::FromStr, I: Iterator<Item = String>>(it: &mut I, flag: &str) -> T {
        it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{flag} requires a value\n{}", Self::usage());
            std::process::exit(2);
        })
    }

    /// Usage text.
    pub fn usage() -> &'static str {
        "usage: <fig binary> [--quick] [--paper-scale] [--seed N] [--splits N] \
         [--max-test N] [--entities N] [--json] [--emit-metrics PATH]"
    }

    /// Entity count for a domain given the flags.
    pub fn entity_count(&self, paper_default: usize, bench_default: usize) -> usize {
        if let Some(n) = self.entities {
            return n;
        }
        if self.paper_scale {
            paper_default
        } else if self.quick {
            (bench_default / 3).max(24)
        } else {
            bench_default
        }
    }

    /// Pages per entity given the flags.
    pub fn pages_per_entity(&self) -> usize {
        if self.paper_scale {
            50
        } else if self.quick {
            20
        } else {
            30
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BenchOpts {
        BenchOpts::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn default_and_flags() {
        let o = parse(&[]);
        assert!(!o.quick);
        assert_eq!(o.splits, 3);

        let o = parse(&["--quick", "--seed", "7", "--json"]);
        assert!(o.quick);
        assert!(o.json);
        assert_eq!(o.seed, 7);
        assert_eq!(o.splits, 1);

        let o = parse(&["--paper-scale"]);
        assert_eq!(o.splits, 10);
        assert_eq!(o.pages_per_entity(), 50);

        let o = parse(&["--emit-metrics", "/tmp/m.json"]);
        assert_eq!(o.emit_metrics.as_deref(), Some("/tmp/m.json"));
    }

    #[test]
    fn entity_count_resolution() {
        assert_eq!(parse(&[]).entity_count(996, 150), 150);
        assert_eq!(parse(&["--paper-scale"]).entity_count(996, 150), 996);
        assert_eq!(parse(&["--quick"]).entity_count(996, 150), 50);
        assert_eq!(parse(&["--entities", "64"]).entity_count(996, 150), 64);
    }
}
