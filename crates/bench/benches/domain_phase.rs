//! Criterion bench: domain-phase cost (graph construction over all domain
//! pages + 14 walk solves + the Y* solve). The paper runs this once per
//! domain; we measure how it scales with the number of domain entities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use l2q_aspect::RelevanceOracle;
use l2q_core::{learn_domain, L2qConfig};
use l2q_corpus::{generate, researchers_domain, CorpusConfig, EntityId};

fn bench_domain_phase(c: &mut Criterion) {
    let corpus = generate(
        &researchers_domain(),
        &CorpusConfig {
            n_entities: 48,
            pages_per_entity: 20,
            ..CorpusConfig::default()
        },
    )
    .unwrap();
    let oracle = RelevanceOracle::from_truth(&corpus);
    let cfg = L2qConfig::default();

    let mut group = c.benchmark_group("domain_phase");
    group.sample_size(10);
    for n in [8usize, 24, 48] {
        let entities: Vec<EntityId> = corpus.entity_ids().take(n).collect();
        group.bench_with_input(BenchmarkId::new("learn_domain", n), &n, |b, _| {
            b.iter(|| learn_domain(&corpus, &entities, &oracle, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_domain_phase);
criterion_main!(benches);
