//! Fleet benchmark: what the router costs and what migration pauses.
//!
//! * `fleet_of_8/direct` vs `fleet_of_8/routed` — the same 8-session wire
//!   workload (2-step batches round-robin to completion) against one
//!   `l2q-serve` directly and against an `l2q-router` fronting two
//!   shards. The recorded value is the **median per-step-request
//!   latency**; the routed/direct gap is the router's per-op overhead
//!   (budget: ≤15%).
//! * `fleet_of_8/routed_traced` — the routed workload again with every
//!   step carrying a distributed-trace context; the traced/routed gap is
//!   `trace_overhead_pct` (budget: ≤5%).
//! * `migration_pause` — client-observed `migrate` latency (drain on the
//!   source + restore on the target) for a mid-harvest session bounced
//!   between two shards; p50/p99 over the samples.
//! * `rebalance_convergence` — passes and migrations for the load
//!   rebalancer to level a 6/0 session skew, plus the wall time.
//! * `drain_to_rejoin_pause` — one full rolling restart of the routed
//!   fleet: total wall time and the per-shard out-of-ring pause.
//! * `fleet_of_8/direct_threads` — the direct workload again on the
//!   legacy thread-per-connection engine; the reactor/threads gap is
//!   `reactor_overhead_pct` (budget: ≤5%).
//! * `idle_connections` — connection scale for the reactor engine: a
//!   re-exec'd child process holds 10k idle sockets open (client fds
//!   live in the child so both processes stay inside the fd limit)
//!   while this process's server multiplexes them on one readiness
//!   loop. Records thread count and RSS before/with the crowd plus the
//!   median step latency of a harvest driven **through** the crowd.
//!
//! Owns its `main` (the vendored criterion harness doesn't expose
//! medians programmatically) and always writes `BENCH_fleet.json` at the
//! repo root. `--quick` shrinks sample counts for CI.

use l2q_aspect::RelevanceOracle;
use l2q_core::L2qConfig;
use l2q_corpus::{generate, researchers_domain, CorpusConfig};
use l2q_router::{RouterConfig, RouterCore, RouterServer};
use l2q_service::{
    BundleConfig, Client, HarvestServer, ServeMode, ServerConfig, ServerHandle, ServingBundle,
};
use l2q_store::{SessionStore, StoreConfig};
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const IDLE_CONNECTIONS: usize = 10_000;

const SESSIONS: u32 = 8;
const N_QUERIES: u32 = 4;

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("l2q-fleet-bench-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bundle() -> Arc<ServingBundle> {
    let corpus = Arc::new(
        generate(
            &researchers_domain(),
            &CorpusConfig {
                n_entities: 24,
                pages_per_entity: 16,
                ..CorpusConfig::default()
            },
        )
        .unwrap(),
    );
    let oracle = RelevanceOracle::from_truth(&corpus);
    Arc::new(ServingBundle::with_oracle(
        corpus,
        Vec::new(),
        oracle,
        L2qConfig::default(),
        BundleConfig::default(),
    ))
}

fn start_shard(b: &Arc<ServingBundle>, dir: &Path, shard_id: &str) -> ServerHandle {
    let store = Arc::new(SessionStore::open(dir, StoreConfig::default()).unwrap());
    HarvestServer::spawn_with_store(
        b.clone(),
        ServerConfig {
            workers: 2,
            queue_cap: 64,
            shard_id: Some(shard_id.to_owned()),
            ..ServerConfig::default()
        },
        Some(store),
        "127.0.0.1:0",
    )
    .expect("bind shard")
}

/// The wire workload: 8 sessions (entities 3..11, `l2qbal`, 4 queries,
/// domain 3) driven round-robin in 2-step batches to completion. Pushes
/// each step request's client-observed latency into `latencies`. With
/// `traced`, every step requests a distributed trace (the
/// traced-vs-untraced gap is the tracing overhead).
fn drive_fleet_wire(client: &mut Client, latencies: &mut Vec<u128>, traced: bool) {
    let mut open: Vec<u64> = (0..SESSIONS)
        .map(|i| {
            client
                .create(3 + i, "RESEARCH", "l2qbal", Some(N_QUERIES), 3)
                .expect("create")
        })
        .collect();
    while !open.is_empty() {
        let mut still_open = Vec::with_capacity(open.len());
        for id in open {
            let t0 = Instant::now();
            let resp = if traced {
                client.step_traced(id, 2, 40).expect("traced step")
            } else {
                client.step(id, 2, 40).expect("step")
            };
            latencies.push(t0.elapsed().as_nanos());
            if resp.state.as_deref() == Some("running") {
                still_open.push(id);
            } else {
                client.close(id).expect("close");
            }
        }
        open = still_open;
    }
}

fn percentile_ns(samples: &[u128], p: f64) -> u128 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank]
}

fn human(ns: u128) -> String {
    if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// `Threads:` and `VmRSS:` (kB) of this process, from `/proc/self/status`.
fn proc_threads_rss() -> (u64, u64) {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    let field = |key: &str| {
        status
            .lines()
            .find(|l| l.starts_with(key))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0)
    };
    (field("Threads:"), field("VmRSS:"))
}

/// Child mode (`--hold-clients ADDR N`): open N idle connections to the
/// bench server and hold them until stdin closes. Run in a separate
/// process so the client-side fds don't count against the server
/// process's fd limit.
fn hold_clients(addr: &str, n: usize) -> ! {
    use std::io::Write;
    let mut held = Vec::with_capacity(n);
    for i in 0..n {
        let mut attempts = 0;
        loop {
            match std::net::TcpStream::connect(addr) {
                Ok(s) => {
                    held.push(s);
                    break;
                }
                Err(e) => {
                    attempts += 1;
                    if attempts > 100 {
                        eprintln!("hold-clients: connect {i} failed after retries: {e}");
                        std::process::exit(1);
                    }
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
            }
        }
    }
    println!("held {}", held.len());
    std::io::stdout().flush().ok();
    // Park until the parent closes our stdin, then let the drop of
    // `held` hang up all the sockets at once.
    let mut sink = String::new();
    while std::io::stdin()
        .read_line(&mut sink)
        .map(|n| n > 0)
        .unwrap_or(false)
    {
        sink.clear();
    }
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--hold-clients") {
        let addr = args.get(i + 1).expect("--hold-clients ADDR N");
        let n: usize = args
            .get(i + 2)
            .and_then(|v| v.parse().ok())
            .expect("--hold-clients ADDR N");
        hold_clients(addr, n);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let fleet_rounds = if quick { 2 } else { 8 };
    let migrations = if quick { 8 } else { 24 };

    eprintln!("building corpus + serving bundle...");
    let b = bundle();

    // --- direct: client -> one store-backed l2q-serve, both engines ----
    // The reactor (the default) and the legacy thread-per-connection
    // engine serve the same workload in **interleaved** rounds: slow
    // drift (CPU warm-up, cache state, background load) then lands on
    // both sides equally instead of biasing whichever ran second. The
    // reactor/threads gap is the reactor's per-request cost (≤5%).
    let direct_dir = bench_dir("direct");
    let mut direct = start_shard(&b, &direct_dir, "solo");
    let threads_dir = bench_dir("direct-threads");
    let threads_store = Arc::new(SessionStore::open(&threads_dir, StoreConfig::default()).unwrap());
    let mut threads_srv = HarvestServer::spawn_with_store(
        b.clone(),
        ServerConfig {
            workers: 2,
            queue_cap: 64,
            shard_id: Some("solo-threads".to_owned()),
            serve_mode: ServeMode::Threads,
            ..ServerConfig::default()
        },
        Some(threads_store),
        "127.0.0.1:0",
    )
    .expect("bind threads-mode shard");
    let mut client = Client::connect(direct.addr()).expect("connect direct");
    let mut threads_client = Client::connect(threads_srv.addr()).expect("connect threads-mode");
    // Warm the shared caches and both engines once, unmeasured, so every
    // measured round runs warm (the bundle — and its caches — is shared
    // by every server).
    let mut scratch = Vec::new();
    drive_fleet_wire(&mut client, &mut scratch, false);
    drive_fleet_wire(&mut threads_client, &mut scratch, false);
    let ab_rounds = fleet_rounds.max(4);
    let mut direct_lat = Vec::new();
    let mut threads_lat = Vec::new();
    for _ in 0..ab_rounds {
        drive_fleet_wire(&mut client, &mut direct_lat, false);
        drive_fleet_wire(&mut threads_client, &mut threads_lat, false);
    }
    direct.shutdown();
    threads_srv.shutdown();
    std::fs::remove_dir_all(&direct_dir).ok();
    std::fs::remove_dir_all(&threads_dir).ok();
    let direct_med = percentile_ns(&direct_lat, 0.5);
    let threads_med = percentile_ns(&threads_lat, 0.5);
    let reactor_overhead_pct = if threads_med == 0 {
        0.0
    } else {
        (direct_med as f64 - threads_med as f64) / threads_med as f64 * 100.0
    };
    println!(
        "fleet_of_8/direct          step median: {} ({} requests)",
        human(direct_med),
        direct_lat.len()
    );
    println!(
        "fleet_of_8/direct_threads  step median: {} ({} requests)",
        human(threads_med),
        threads_lat.len()
    );
    println!("reactor_overhead_pct       {reactor_overhead_pct:+.1}%");

    // --- routed: client -> router -> two shards, shared store ----------
    let fleet_dir = bench_dir("routed");
    let shard_a = start_shard(&b, &fleet_dir, "alpha");
    let shard_b = start_shard(&b, &fleet_dir, "beta");
    let core = Arc::new(RouterCore::new(RouterConfig::default()));
    core.add_shard("alpha", &shard_a.addr().to_string())
        .unwrap();
    core.add_shard("beta", &shard_b.addr().to_string()).unwrap();
    let mut router = RouterServer::spawn(core.clone(), "127.0.0.1:0").expect("bind router");
    let mut client = Client::connect(router.addr()).expect("connect router");
    let mut routed_lat = Vec::new();
    for _ in 0..fleet_rounds {
        drive_fleet_wire(&mut client, &mut routed_lat, false);
    }
    let routed_med = percentile_ns(&routed_lat, 0.5);
    let overhead_pct = if direct_med == 0 {
        0.0
    } else {
        (routed_med as f64 - direct_med as f64) / direct_med as f64 * 100.0
    };
    println!(
        "fleet_of_8/routed          step median: {} ({} requests)",
        human(routed_med),
        routed_lat.len()
    );
    println!("routed_overhead_pct        {overhead_pct:+.1}%");

    // --- traced: the same routed workload with every step traced -------
    // The traced/untraced gap bounds the tracing cost (budget: ≤5%).
    let mut traced_lat = Vec::new();
    for _ in 0..fleet_rounds {
        drive_fleet_wire(&mut client, &mut traced_lat, true);
    }
    let traced_med = percentile_ns(&traced_lat, 0.5);
    let trace_overhead_pct = if routed_med == 0 {
        0.0
    } else {
        (traced_med as f64 - routed_med as f64) / routed_med as f64 * 100.0
    };
    println!(
        "fleet_of_8/routed_traced   step median: {} ({} requests)",
        human(traced_med),
        traced_lat.len()
    );
    println!("trace_overhead_pct         {trace_overhead_pct:+.1}%");

    // --- migration pause: bounce one mid-harvest session ---------------
    let id = client
        .create(1, "RESEARCH", "l2qbal", Some(64), 3)
        .expect("create migration session");
    client.step(id, 2, 40).expect("warm the session");
    let owner = client.status(id).expect("status").shard.unwrap();
    let mut target = if owner == "alpha" { "beta" } else { "alpha" };
    let mut pause_lat = Vec::with_capacity(migrations);
    for _ in 0..migrations {
        let t0 = Instant::now();
        client.migrate(id, Some(target)).expect("migrate");
        pause_lat.push(t0.elapsed().as_nanos());
        target = if target == "alpha" { "beta" } else { "alpha" };
    }
    let pause_p50 = percentile_ns(&pause_lat, 0.5);
    let pause_p99 = percentile_ns(&pause_lat, 0.99);
    println!(
        "migration_pause            p50 {} / p99 {} ({} migrations)",
        human(pause_p50),
        human(pause_p99),
        pause_lat.len()
    );
    client.close(id).ok();

    // --- rebalance convergence: passes to level a skewed fleet ----------
    // Six live sessions all pinned onto one shard; `rebalance_once` runs
    // until a pass moves nothing. With the default hysteresis (min gap 2,
    // budget 4) a 6/0 skew levels to 4/2 in one working pass, so the
    // interesting numbers are how many passes did work and the wall time
    // of the whole convergence.
    let mut skewed = Vec::new();
    for i in 0..6u32 {
        let id = client
            .create(9 + i, "RESEARCH", "l2qbal", Some(64), 3)
            .expect("create skew session");
        client.step(id, 1, 40).expect("warm skew session");
        client.migrate(id, Some("alpha")).expect("pin to alpha");
        skewed.push(id);
    }
    let t0 = Instant::now();
    let mut rebalance_passes = 0u64;
    let mut rebalance_moves = 0u64;
    loop {
        let moved = core.rebalance_once() as u64;
        rebalance_passes += 1;
        rebalance_moves += moved;
        if moved == 0 || rebalance_passes >= 16 {
            break;
        }
    }
    let rebalance_ns = t0.elapsed().as_nanos();
    println!(
        "rebalance_convergence      {rebalance_moves} migrations over {rebalance_passes} passes \
         in {}",
        human(rebalance_ns)
    );

    // --- drain-to-rejoin pause: one full rolling restart ----------------
    // Drain -> wait healthy -> rejoin for every shard in turn, with the
    // skewed sessions still resident so the drains do real migration
    // work. The per-shard figure is the pause a client-facing shard
    // spends out of the ring during a fleet-wide restart.
    let t0 = Instant::now();
    let resp = core.rolling_restart();
    let rolling_ns = t0.elapsed().as_nanos();
    assert!(resp.ok, "rolling restart failed: {:?}", resp.error);
    let restarted = resp.restarted.unwrap_or(0);
    let pause_per_shard_ns = if restarted == 0 {
        0
    } else {
        rolling_ns / restarted as u128
    };
    println!(
        "drain_to_rejoin_pause      {} total / {} per shard ({restarted} shards cycled)",
        human(rolling_ns),
        human(pause_per_shard_ns)
    );
    for id in skewed {
        client.close(id).ok();
    }
    router.shutdown();
    std::fs::remove_dir_all(&fleet_dir).ok();

    // --- connection scale: a 10k-idle-socket crowd on the reactor -------
    // The acceptance claim: the readiness loop holds the crowd with zero
    // extra threads and flat memory, and a harvest stepped *through* the
    // crowd stays fast. Client fds live in a re-exec'd child process.
    let mut scale_srv = HarvestServer::spawn(
        b.clone(),
        ServerConfig {
            workers: 2,
            queue_cap: 64,
            max_connections: IDLE_CONNECTIONS + 64,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind scale server");
    let (threads_before, rss_before_kb) = proc_threads_rss();
    let exe = std::env::current_exe().expect("current_exe");
    let mut holder = std::process::Command::new(exe)
        .arg("--hold-clients")
        .arg(scale_srv.addr().to_string())
        .arg(IDLE_CONNECTIONS.to_string())
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn client-holder child");
    let mut holder_out = std::io::BufReader::new(holder.stdout.take().expect("holder stdout"));
    let mut line = String::new();
    holder_out.read_line(&mut line).expect("holder handshake");
    let held: usize = line
        .trim()
        .strip_prefix("held ")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("client-holder failed: {line:?}"));
    // Let the accept churn settle before sampling memory.
    std::thread::sleep(std::time::Duration::from_millis(500));
    let (threads_with_held, rss_with_held_kb) = proc_threads_rss();

    let mut client = Client::connect(scale_srv.addr()).expect("connect through the crowd");
    let id = client
        .create(2, "RESEARCH", "l2qbal", Some(N_QUERIES), 3)
        .expect("create through the crowd");
    let mut crowd_lat = Vec::new();
    loop {
        let t0 = Instant::now();
        let resp = client.step(id, 1, 40).expect("step through the crowd");
        crowd_lat.push(t0.elapsed().as_nanos());
        if resp.state.as_deref() != Some("running") {
            break;
        }
    }
    client.close(id).ok();
    let crowd_med = percentile_ns(&crowd_lat, 0.5);
    let readiness_events = l2q_obs::global()
        .counter("reactor_readiness_events_total")
        .get();
    let rss_per_conn_bytes =
        rss_with_held_kb.saturating_sub(rss_before_kb) * 1024 / IDLE_CONNECTIONS as u64;
    println!(
        "idle_connections           held {held}: threads {threads_before} -> {threads_with_held}, \
         rss {rss_before_kb} kB -> {rss_with_held_kb} kB ({rss_per_conn_bytes} B/conn), \
         step median through the crowd {}",
        human(crowd_med)
    );
    drop(holder.stdin.take());
    holder.wait().ok();
    scale_srv.shutdown();

    // Canonical perf-trajectory artifact at the repo root.
    use serde_json::Value;
    let lat_entry = |med: u128, n: usize| {
        Value::Object(vec![
            ("median_ns".into(), Value::Num(med as f64)),
            ("samples".into(), Value::Num(n as f64)),
        ])
    };
    let doc = Value::Object(vec![
        ("bench".to_string(), Value::Str("fleet".into())),
        ("quick".to_string(), Value::Bool(quick)),
        (
            "results".to_string(),
            Value::Object(vec![
                (
                    "fleet_of_8/direct".into(),
                    lat_entry(direct_med, direct_lat.len()),
                ),
                (
                    "fleet_of_8/routed".into(),
                    lat_entry(routed_med, routed_lat.len()),
                ),
                ("routed_overhead_pct".into(), Value::Num(overhead_pct)),
                (
                    "fleet_of_8/routed_traced".into(),
                    lat_entry(traced_med, traced_lat.len()),
                ),
                ("trace_overhead_pct".into(), Value::Num(trace_overhead_pct)),
                (
                    "migration_pause".into(),
                    Value::Object(vec![
                        ("p50_ns".into(), Value::Num(pause_p50 as f64)),
                        ("p99_ns".into(), Value::Num(pause_p99 as f64)),
                        ("samples".into(), Value::Num(pause_lat.len() as f64)),
                    ]),
                ),
                (
                    "rebalance_convergence".into(),
                    Value::Object(vec![
                        ("passes".into(), Value::Num(rebalance_passes as f64)),
                        ("migrations".into(), Value::Num(rebalance_moves as f64)),
                        ("total_ns".into(), Value::Num(rebalance_ns as f64)),
                    ]),
                ),
                (
                    "drain_to_rejoin_pause".into(),
                    Value::Object(vec![
                        ("total_ns".into(), Value::Num(rolling_ns as f64)),
                        ("per_shard_ns".into(), Value::Num(pause_per_shard_ns as f64)),
                        ("shards_cycled".into(), Value::Num(restarted as f64)),
                    ]),
                ),
                (
                    "fleet_of_8/direct_threads".into(),
                    lat_entry(threads_med, threads_lat.len()),
                ),
                (
                    "reactor_overhead_pct".into(),
                    Value::Num(reactor_overhead_pct),
                ),
                (
                    "idle_connections".into(),
                    Value::Object(vec![
                        ("held".into(), Value::Num(held as f64)),
                        ("threads_before".into(), Value::Num(threads_before as f64)),
                        (
                            "threads_with_held".into(),
                            Value::Num(threads_with_held as f64),
                        ),
                        ("rss_before_kb".into(), Value::Num(rss_before_kb as f64)),
                        (
                            "rss_with_held_kb".into(),
                            Value::Num(rss_with_held_kb as f64),
                        ),
                        (
                            "rss_per_conn_bytes".into(),
                            Value::Num(rss_per_conn_bytes as f64),
                        ),
                        (
                            "step_median_through_crowd_ns".into(),
                            Value::Num(crowd_med as f64),
                        ),
                        (
                            "readiness_events_total".into(),
                            Value::Num(readiness_events as f64),
                        ),
                    ]),
                ),
            ]),
        ),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    std::fs::write(out, serde_json::to_string_pretty(&doc).unwrap()).expect("write bench json");
    println!("wrote {out}");
}
