//! Criterion bench: serving throughput — harvest steps/sec through the
//! scheduler's worker pool as the pool grows, plus the retrieval cache's
//! effect on repeated harvests.
//!
//! Each iteration creates a fresh batch of sessions over the shared
//! bundle and drives every one to completion through the bounded queue,
//! so the measured time covers session creation, scheduling, selector
//! iterations, and cache traffic — the serving hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use l2q_aspect::RelevanceOracle;
use l2q_core::L2qConfig;
use l2q_corpus::{generate, researchers_domain, CorpusConfig, EntityId};
use l2q_service::{
    BundleConfig, Scheduler, SelectorKind, ServiceMetrics, ServingBundle, SessionManager,
    SessionSpec,
};
use std::sync::Arc;
use std::time::Duration;

const SESSIONS: u32 = 8;
const N_QUERIES: usize = 4;

fn bundle() -> Arc<ServingBundle> {
    let corpus = Arc::new(
        generate(
            &researchers_domain(),
            &CorpusConfig {
                n_entities: 24,
                pages_per_entity: 16,
                ..CorpusConfig::default()
            },
        )
        .unwrap(),
    );
    let oracle = RelevanceOracle::from_truth(&corpus);
    Arc::new(ServingBundle::with_oracle(
        corpus,
        Vec::new(),
        oracle,
        L2qConfig::default(),
        BundleConfig::default(),
    ))
}

/// Create `SESSIONS` sessions and run all of them to completion through
/// the scheduler, interleaving 2-step batches round-robin the way the
/// wire front end does.
fn drive_fleet(manager: &SessionManager, scheduler: &Scheduler) {
    drive_fleet_inner(manager, scheduler, false)
}

/// Same workload, but every step batch is submitted under a fresh trace
/// root, so each harvest step records its span tree into the ring
/// buffer — the traced/untraced gap is the tracing tax.
fn drive_fleet_traced(manager: &SessionManager, scheduler: &Scheduler) {
    drive_fleet_inner(manager, scheduler, true)
}

fn drive_fleet_inner(manager: &SessionManager, scheduler: &Scheduler, traced: bool) {
    let aspect = manager.bundle().corpus.aspect_by_name("RESEARCH").unwrap();
    let ids: Vec<u64> = (0..SESSIONS)
        .map(|i| {
            manager
                .create(&SessionSpec {
                    entity: EntityId(3 + i),
                    aspect,
                    selector: SelectorKind::L2qbal,
                    n_queries: Some(N_QUERIES),
                    domain_size: 3,
                })
                .expect("create session")
                .id
        })
        .collect();
    let mut open = ids;
    while !open.is_empty() {
        let mut still_open = Vec::with_capacity(open.len());
        for id in open {
            let _trace = traced.then(|| l2q_obs::trace::enter(l2q_obs::TraceContext::new_root()));
            let report = scheduler
                .run(manager.get(id).expect("session"), 2)
                .expect("step batch");
            if report.status.finished.is_none() {
                still_open.push(id);
            } else {
                manager.close(id).expect("close");
            }
        }
        open = still_open;
    }
}

fn bench_steps_vs_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        // Fresh bundle per pool size: each measurement starts cold and
        // warms its own caches, so pool sizes see identical workloads.
        let bundle = bundle();
        let metrics = Arc::new(ServiceMetrics::default());
        let manager = SessionManager::new(bundle, Duration::from_secs(300), metrics.clone());
        let scheduler = Scheduler::new(workers, 64, metrics);
        group.bench_with_input(BenchmarkId::new("fleet_of_8", workers), &workers, |b, _| {
            b.iter(|| drive_fleet(&manager, &scheduler))
        });
    }
    group.finish();
}

/// The durability tax: the same 8-session fleet with no store, with the
/// store at the default group-commit policy (fsync every 8 batches), at
/// `always` (per-batch fdatasync — the power-crash-durable ceiling), and
/// with fsync off. The budget is <10% regression for the default policy;
/// `always` is informational: the fleet serializes ~24 batch commits, so
/// per-batch fdatasync pays the full device-sync latency each time.
fn bench_store_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput_store");
    group.sample_size(30);

    let no_store_metrics = Arc::new(ServiceMetrics::default());
    let no_store_manager =
        SessionManager::new(bundle(), Duration::from_secs(300), no_store_metrics.clone());
    let no_store_scheduler = Scheduler::new(2, 64, no_store_metrics);
    group.bench_function("fleet_of_8/no_store", |b| {
        b.iter(|| drive_fleet(&no_store_manager, &no_store_scheduler))
    });

    for (tag, fsync) in [
        ("store_default_fsync", l2q_store::FsyncPolicy::default()),
        ("store_fsync_always", l2q_store::FsyncPolicy::Always),
        ("store_no_fsync", l2q_store::FsyncPolicy::Never),
    ] {
        let dir = std::env::temp_dir().join(format!(
            "l2q-bench-store-overhead-{}-{tag}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let store = Arc::new(
            l2q_store::SessionStore::open(
                &dir,
                l2q_store::StoreConfig {
                    fsync,
                    ..l2q_store::StoreConfig::default()
                },
            )
            .expect("open store"),
        );
        let metrics = Arc::new(ServiceMetrics::default());
        let manager = SessionManager::with_store(
            bundle(),
            Duration::from_secs(300),
            metrics.clone(),
            Some(store),
        );
        let scheduler = Scheduler::new(2, 64, metrics);
        group.bench_function(format!("fleet_of_8/{tag}"), |b| {
            b.iter(|| drive_fleet(&manager, &scheduler))
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

/// The tracing tax at the scheduler layer: the same 8-session fleet
/// driven untraced (spans compile to a context check that finds nothing)
/// vs with every step batch rooted in a fresh trace, so each harvest
/// step records its full span tree into the ring buffer. The budget for
/// the traced/untraced gap is ≤5%.
fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput_traced");
    group.sample_size(30);

    for (tag, traced) in [("untraced", false), ("traced", true)] {
        let metrics = Arc::new(ServiceMetrics::default());
        let manager = SessionManager::new(bundle(), Duration::from_secs(300), metrics.clone());
        let scheduler = Scheduler::new(2, 64, metrics);
        // Warm the caches once so both arms measure the steady state.
        drive_fleet(&manager, &scheduler);
        group.bench_function(format!("fleet_of_8/{tag}"), |b| {
            b.iter(|| {
                if traced {
                    drive_fleet_traced(&manager, &scheduler)
                } else {
                    drive_fleet(&manager, &scheduler)
                }
            })
        });
    }
    group.finish();
}

fn bench_retrieval_cache_effect(c: &mut Criterion) {
    let mut group = c.benchmark_group("retrieval_cache");
    group.sample_size(10);

    // Cold: a cache too small to hold anything, so every fire computes.
    let cold = bundle();
    let cold_metrics = Arc::new(ServiceMetrics::default());
    let cold_manager = SessionManager::new(
        Arc::new(ServingBundle::with_oracle(
            cold.corpus.clone(),
            Vec::new(),
            RelevanceOracle::from_truth(&cold.corpus),
            L2qConfig::default(),
            BundleConfig {
                cache_shards: 1,
                cache_capacity: 1,
            },
        )),
        Duration::from_secs(300),
        cold_metrics.clone(),
    );
    let cold_scheduler = Scheduler::new(2, 64, cold_metrics);
    group.bench_function("fleet_of_8/cold", |b| {
        b.iter(|| drive_fleet(&cold_manager, &cold_scheduler))
    });

    // Warm: default cache; after the first fleet every repeat is a hit.
    let warm_metrics = Arc::new(ServiceMetrics::default());
    let warm_manager =
        SessionManager::new(bundle(), Duration::from_secs(300), warm_metrics.clone());
    let warm_scheduler = Scheduler::new(2, 64, warm_metrics);
    drive_fleet(&warm_manager, &warm_scheduler);
    group.bench_function("fleet_of_8/warm", |b| {
        b.iter(|| drive_fleet(&warm_manager, &warm_scheduler))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_steps_vs_workers,
    bench_store_overhead,
    bench_trace_overhead,
    bench_retrieval_cache_effect
);
criterion_main!(benches);
