//! Criterion bench: random-walk solver scaling on synthetic reinforcement
//! graphs (the per-iteration cost is O(|V| + |E|), paper Sect. III).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use l2q_graph::{
    solve, solve_with_scheme, GraphBuilder, Regularization, Scheme, UtilityKind, WalkConfig,
};

/// Build a synthetic tripartite graph: `n` pages, 4n queries, n/2
/// templates, ~3 edges per query.
fn synthetic(n: usize) -> l2q_graph::ReinforcementGraph {
    let n_pages = n;
    let n_queries = 4 * n;
    let n_templates = (n / 2).max(1);
    let mut b = GraphBuilder::new(n_pages, n_queries, n_templates);
    let mut x = 0x2545F4914F6CDD1Du64;
    let mut rand = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for q in 0..n_queries {
        let deg = 1 + (rand() % 3) as usize;
        for _ in 0..deg {
            b.page_query((rand() % n_pages as u64) as u32, q as u32, 1.0);
        }
        if rand() % 2 == 0 {
            b.query_template(q as u32, (rand() % n_templates as u64) as u32, 1.0);
        }
    }
    b.build()
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_solve");
    for n in [100usize, 1_000, 10_000] {
        let g = synthetic(n);
        let relevant: Vec<bool> = (0..g.n_pages()).map(|i| i % 3 == 0).collect();
        let cfg = WalkConfig::default();
        group.bench_with_input(BenchmarkId::new("precision", n), &n, |bench, _| {
            let reg = Regularization::precision_from_relevance(&g, &relevant);
            bench.iter(|| solve(&g, UtilityKind::Precision, &reg, &cfg));
        });
        group.bench_with_input(BenchmarkId::new("recall", n), &n, |bench, _| {
            let reg = Regularization::recall_from_relevance(&g, &relevant);
            bench.iter(|| solve(&g, UtilityKind::Recall, &reg, &cfg));
        });
        group.bench_with_input(
            BenchmarkId::new("precision_gauss_seidel", n),
            &n,
            |bench, _| {
                let reg = Regularization::precision_from_relevance(&g, &relevant);
                bench.iter(|| {
                    solve_with_scheme(&g, UtilityKind::Precision, &reg, &cfg, Scheme::GaussSeidel)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
