//! Criterion bench: end-to-end query selection cost — the Fig. 14
//! "Selection" column as a microbenchmark — plus candidate enumeration
//! and the ablation over the page/template balance knob.

use criterion::{criterion_group, criterion_main, Criterion};
use l2q_aspect::RelevanceOracle;
use l2q_core::{
    learn_domain, L2qConfig, L2qSelector, QuerySelector, SelectionInput, StopwordCache,
};
use l2q_corpus::{generate, researchers_domain, Corpus, CorpusConfig, EntityId, PageId};
use l2q_retrieval::SearchEngine;

struct Fixture {
    corpus: std::sync::Arc<Corpus>,
    oracle: RelevanceOracle,
    cfg: L2qConfig,
}

fn fixture() -> Fixture {
    let corpus = std::sync::Arc::new(
        generate(
            &researchers_domain(),
            &CorpusConfig {
                n_entities: 40,
                ..CorpusConfig::default()
            },
        )
        .unwrap(),
    );
    let oracle = RelevanceOracle::from_truth(&corpus);
    Fixture {
        corpus,
        oracle,
        cfg: L2qConfig::default(),
    }
}

fn bench_selection(c: &mut Criterion) {
    let f = fixture();
    let engine = SearchEngine::with_defaults(f.corpus.clone());
    let domain_entities: Vec<EntityId> = f.corpus.entity_ids().take(20).collect();
    let domain = learn_domain(&f.corpus, &domain_entities, &f.oracle, &f.cfg);

    let entity = EntityId(30);
    let aspect = f.corpus.aspect_by_name("RESEARCH").unwrap();
    let seed = l2q_core::Query::new(f.corpus.seed_query(entity));
    let gathered: Vec<PageId> = engine.search(entity, f.corpus.seed_query(entity));
    let relevant: Vec<bool> = gathered
        .iter()
        .map(|&p| f.oracle.is_relevant(aspect, p))
        .collect();
    let fired = vec![seed];
    let mut stops = StopwordCache::new();
    let page_candidates =
        l2q_core::selector::page_candidates(&f.corpus, &gathered, &fired, &f.cfg, &mut stops);

    c.bench_function("candidate_enumeration", |b| {
        b.iter(|| {
            let mut stops = StopwordCache::new();
            l2q_core::selector::page_candidates(&f.corpus, &gathered, &fired, &f.cfg, &mut stops)
        })
    });

    let input = SelectionInput {
        corpus: &f.corpus,
        entity,
        aspect,
        gathered: &gathered,
        relevant: &relevant,
        fired: &fired,
        page_candidates: &page_candidates,
        domain: Some(&domain),
        oracle: &f.oracle,
        engine: &engine,
        cfg: &f.cfg,
    };

    c.bench_function("select_l2qp", |b| {
        b.iter(|| {
            let mut sel = L2qSelector::l2qp();
            sel.select(&input)
        })
    });
    c.bench_function("select_l2qbal", |b| {
        b.iter(|| {
            let mut sel = L2qSelector::l2qbal();
            sel.select(&input)
        })
    });
    c.bench_function("select_p_plus_t", |b| {
        b.iter(|| {
            let mut sel = L2qSelector::precision_templates();
            sel.select(&input)
        })
    });
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
