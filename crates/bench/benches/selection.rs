//! Selection-path benchmark: end-to-end query selection cost — the
//! Fig. 14 "Selection" column as a microbenchmark — with comparison
//! groups for the incremental/warm/parallel hot path:
//!
//! * `selection_step/{cold,incremental,incremental_parallel,pruned}` —
//!   median ns per harvest step under the seed's cold-serial path, the
//!   incremental + warm-start path (serial walks), the full unpruned
//!   parallel path, and the bound-and-prune path (certified early-stopped
//!   walk solves over the incremental serial path).
//! * `context_walks/{serial,parallel}` — the three context walks of one
//!   selection, serial vs scoped threads.
//! * exact solver sweeps per solve, cold vs warm-started.
//!
//! This bench owns its `main` (the vendored criterion harness doesn't
//! expose medians programmatically) and always writes a canonical
//! `BENCH_selection.json` at the repo root so future changes have a perf
//! trajectory to compare against. Flags: `--quick` shrinks the corpus and
//! sample counts for CI; `--emit-metrics` embeds the full observability
//! registry dump (the CI gate asserts `graph_solve_sweeps` activity and
//! warm ≤ cold sweep medians from it).

use l2q_aspect::RelevanceOracle;
use l2q_core::{
    learn_domain, DomainModel, EntityPhase, EntityPhaseState, HarvestState, Harvester, L2qConfig,
    L2qSelector, Query, QuerySelector, SelectionInput, StepOutcome, StopwordCache,
};
use l2q_corpus::spec::DomainSpec;
use l2q_corpus::{
    cars_domain, generate, researchers_domain, Corpus, CorpusConfig, EntityId, PageId,
};
use l2q_retrieval::SearchEngine;
use std::time::Instant;

struct Fixture {
    corpus: std::sync::Arc<Corpus>,
    oracle: RelevanceOracle,
    cfg: L2qConfig,
}

fn fixture(quick: bool) -> Fixture {
    let corpus = std::sync::Arc::new(
        generate(
            &researchers_domain(),
            &CorpusConfig {
                n_entities: if quick { 16 } else { 40 },
                ..CorpusConfig::default()
            },
        )
        .unwrap(),
    );
    let oracle = RelevanceOracle::from_truth(&corpus);
    Fixture {
        corpus,
        oracle,
        cfg: L2qConfig::default(),
    }
}

fn med_of(results: &[(String, u128, usize)], name: &str) -> u128 {
    results
        .iter()
        .find(|(n, _, _)| n == name)
        .map(|&(_, med, _)| med)
        .unwrap_or(0)
}

fn median_ns(mut samples: Vec<u128>) -> u128 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn human(ns: u128) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Time `routine` `samples` times (after one warmup call) and report the
/// median in criterion-like one-line form.
fn bench<F: FnMut()>(name: &str, samples: usize, mut routine: F) -> (String, u128, usize) {
    routine(); // warmup
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        routine();
        times.push(t0.elapsed().as_nanos());
    }
    let n = times.len();
    let med = median_ns(times);
    println!("{name:<50} time: [{} median, {n} samples]", human(med));
    (name.to_string(), med, n)
}

/// Drive full harvest sessions under `cfg` and return the wall-clock of
/// every *advancing* step (selection + fire + bookkeeping). The median is
/// dominated by warm steps when the budget allows several iterations.
fn step_times(f: &Fixture, domain: &DomainModel, cfg: L2qConfig, sessions: usize) -> Vec<u128> {
    let engine = SearchEngine::with_defaults(f.corpus.clone());
    let harvester = Harvester {
        corpus: &f.corpus,
        engine: &engine,
        oracle: &f.oracle,
        domain: Some(domain),
        cfg,
    };
    let aspect = f.corpus.aspect_by_name("RESEARCH").unwrap();
    let entity = EntityId(f.corpus.entity_ids().count() as u32 - 2);
    let mut out = Vec::new();
    for _ in 0..sessions {
        let mut sel = L2qSelector::l2qbal();
        sel.reset();
        let mut state = HarvestState::begin(&harvester, entity, aspect);
        loop {
            let t0 = Instant::now();
            let outcome = state.step(&harvester, &mut sel);
            let dt = t0.elapsed().as_nanos();
            match outcome {
                StepOutcome::Advanced { .. } => out.push(dt),
                StepOutcome::Finished(_) => break,
            }
        }
    }
    out
}

/// Exact solver sweeps per walk solve while the page set grows through a
/// persistent phase state. Two states run over the *same* page prefixes:
/// one with warm starts disabled (every solve cold) and one with the
/// default warm path — so cold and warm sweeps are compared at matched
/// graph sizes. The first build (no previous fixpoint to start from, so
/// cold in both states) is excluded. Returns `(cold, warm)` sweep counts.
fn sweep_counts(f: &Fixture, cfg: &L2qConfig) -> (Vec<u64>, Vec<u64>) {
    let aspect = f.corpus.aspect_by_name("RESEARCH").unwrap();
    let entity = EntityId(f.corpus.entity_ids().count() as u32 - 2);
    let all_pages: Vec<PageId> = f.corpus.pages_of(entity).iter().map(|p| p.id).collect();
    let seed = Query::new(f.corpus.seed_query(entity));
    let fired = vec![seed];
    let mut stops = StopwordCache::new();

    let cold_cfg = cfg.with_warm_start(false);
    let warm_cfg = *cfg;
    let mut state_cold = EntityPhaseState::new();
    let mut state_warm = EntityPhaseState::new();
    let mut cold = Vec::new();
    let mut warm = Vec::new();
    for (i, k) in (2..=all_pages.len()).enumerate() {
        let pages = &all_pages[..k];
        for (state, run_cfg, into) in [
            (&mut state_cold, &cold_cfg, &mut cold),
            (&mut state_warm, &warm_cfg, &mut warm),
        ] {
            let candidates =
                l2q_core::selector::page_candidates(&f.corpus, pages, &fired, run_cfg, &mut stops);
            let phase = EntityPhase::build_incremental(
                &f.corpus, aspect, pages, &f.oracle, candidates, None, true, run_cfg, state,
            );
            let _ = phase.precision_with(Some(state));
            let _ = phase.recall_with(Some(state));
            if i > 0 {
                for s in state.last_sweeps().iter().flatten() {
                    into.push(*s as u64);
                }
            }
        }
    }
    (cold, warm)
}

fn median_u64(mut v: Vec<u64>) -> u64 {
    if v.is_empty() {
        return 0;
    }
    v.sort_unstable();
    v[v.len() / 2]
}

/// Bit-identity spot check for the JSON artifact: the pruned and
/// unpruned paths must fire exactly the same query sequence on a small
/// harvest of `spec`. (The exhaustive version lives in
/// `crates/core/tests/determinism.rs`; this one feeds the CI gate.)
fn pruned_trajectory_matches(spec: &DomainSpec) -> bool {
    let corpus = std::sync::Arc::new(generate(spec, &CorpusConfig::tiny()).unwrap());
    let engine = SearchEngine::with_defaults(corpus.clone());
    let oracle = RelevanceOracle::from_truth(&corpus);
    let run = |cfg: L2qConfig| -> Vec<String> {
        let domain_entities: Vec<EntityId> = corpus.entity_ids().take(4).collect();
        let domain = learn_domain(&corpus, &domain_entities, &oracle, &cfg);
        let harvester = Harvester {
            corpus: &corpus,
            engine: &engine,
            oracle: &oracle,
            domain: Some(&domain),
            cfg,
        };
        let mut fired = Vec::new();
        for aspect in corpus.aspects() {
            for mut sel in [
                L2qSelector::l2qp(),
                L2qSelector::l2qr(),
                L2qSelector::l2qbal(),
            ] {
                let rec = harvester.run(EntityId(6), aspect, &mut sel);
                fired.extend(rec.queries().map(|q| format!("{}/{q:?}", sel.name())));
            }
        }
        fired
    };
    run(L2qConfig::default().with_prune(true)) == run(L2qConfig::default().with_prune(false))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let emit_metrics = args.iter().any(|a| a == "--emit-metrics");
    let sessions = if quick { 3 } else { 10 };
    let samples = if quick { 5 } else { 20 };

    let f = fixture(quick);
    let engine = SearchEngine::with_defaults(f.corpus.clone());
    let n_domain = if quick { 8 } else { 20 };
    let domain_entities: Vec<EntityId> = f.corpus.entity_ids().take(n_domain).collect();
    let domain = learn_domain(&f.corpus, &domain_entities, &f.oracle, &f.cfg);

    let entity = EntityId(f.corpus.entity_ids().count() as u32 - 2);
    let aspect = f.corpus.aspect_by_name("RESEARCH").unwrap();
    let seed = Query::new(f.corpus.seed_query(entity));
    let gathered: Vec<PageId> = engine.search(entity, f.corpus.seed_query(entity));
    let relevant: Vec<bool> = gathered
        .iter()
        .map(|&p| f.oracle.is_relevant(aspect, p))
        .collect();
    let fired = vec![seed];
    let mut stops = StopwordCache::new();
    let page_candidates =
        l2q_core::selector::page_candidates(&f.corpus, &gathered, &fired, &f.cfg, &mut stops);

    let mut results: Vec<(String, u128, usize)> = Vec::new();

    results.push(bench("candidate_enumeration", samples, || {
        let mut stops = StopwordCache::new();
        let _ =
            l2q_core::selector::page_candidates(&f.corpus, &gathered, &fired, &f.cfg, &mut stops);
    }));

    // Single-shot cold selections (backward-comparable with the seed:
    // pruning is pinned off so these names keep measuring the same
    // thing they always did).
    let unpruned_cfg = f.cfg.with_prune(false);
    let input = SelectionInput {
        corpus: &f.corpus,
        entity,
        aspect,
        gathered: &gathered,
        relevant: &relevant,
        fired: &fired,
        page_candidates: &page_candidates,
        domain: Some(&domain),
        oracle: &f.oracle,
        engine: &engine,
        cfg: &unpruned_cfg,
        phase_state: None,
    };
    results.push(bench("select_l2qp", samples, || {
        let mut sel = L2qSelector::l2qp();
        let _ = sel.select(&input);
    }));
    results.push(bench("select_l2qbal", samples, || {
        let mut sel = L2qSelector::l2qbal();
        let _ = sel.select(&input);
    }));
    results.push(bench("select_p_plus_t", samples, || {
        let mut sel = L2qSelector::precision_templates();
        let _ = sel.select(&input);
    }));

    // The same one-shot selections through the bound-and-prune path.
    let input_pruned = SelectionInput {
        cfg: &f.cfg,
        ..input
    };
    results.push(bench("select_l2qp_pruned", samples, || {
        let mut sel = L2qSelector::l2qp();
        let _ = sel.select(&input_pruned);
    }));
    results.push(bench("select_l2qbal_pruned", samples, || {
        let mut sel = L2qSelector::l2qbal();
        let _ = sel.select(&input_pruned);
    }));

    // Cold vs incremental vs fully parallel per-step medians. Each
    // variant drives complete sessions; per-step times are collected
    // individually so the median lands on a representative (warm) step.
    let budget = L2qConfig::default().with_n_queries(6);
    // Counter deltas around the pruned group give its exact-solve
    // fraction (everything before it pins pruning off).
    let reg = l2q_obs::global();
    let (c_pruned, c_exact) = (
        reg.counter("selection_candidates_pruned_total"),
        reg.counter("selection_exact_solves_total"),
    );
    let (pruned0, exact0) = (c_pruned.get(), c_exact.get());
    for (name, cfg) in [
        ("selection_step/cold", budget.cold_serial()),
        (
            "selection_step/incremental",
            budget.with_parallel_walks(false).with_prune(false),
        ),
        (
            "selection_step/incremental_parallel",
            budget.with_prune(false),
        ),
        // Bound-and-prune over the incremental serial path — the
        // apples-to-apples comparison for `selection_step/incremental`.
        (
            "selection_step/pruned",
            budget.with_parallel_walks(false).with_prune(true),
        ),
    ] {
        let times = step_times(&f, &domain, cfg, sessions);
        let n = times.len();
        let med = median_ns(times);
        println!("{name:<50} time: [{} median, {n} steps]", human(med));
        results.push((name.to_string(), med, n));
    }
    let d_exact = c_exact.get() - exact0;
    let d_pruned = c_pruned.get() - pruned0;
    let exact_solve_fraction = if d_exact + d_pruned == 0 {
        1.0
    } else {
        d_exact as f64 / (d_exact + d_pruned) as f64
    };
    println!("selection_step/pruned exact_solve_fraction        {exact_solve_fraction:.4}");

    // Serial vs parallel context walks on one frozen phase.
    let phase_candidates = {
        let mut sel_pool = page_candidates.clone();
        sel_pool.extend(domain.frequent_queries().cloned());
        sel_pool.sort();
        sel_pool.dedup();
        sel_pool
    };
    let phase = EntityPhase::build(
        &f.corpus,
        aspect,
        &gathered,
        &f.oracle,
        phase_candidates,
        Some(&domain),
        true,
        &f.cfg,
    );
    results.push(bench("context_walks/serial", samples, || {
        let _ = phase.context_walks(None, false);
    }));
    results.push(bench("context_walks/parallel", samples, || {
        let _ = phase.context_walks(None, true);
    }));

    // Exact sweeps per solve, cold vs warm-started.
    let (cold_sweeps, warm_sweeps) = sweep_counts(&f, &f.cfg);
    let cold_med = median_u64(cold_sweeps);
    let warm_med = median_u64(warm_sweeps);
    println!("sweeps_per_solve/cold                              median: {cold_med}");
    println!("sweeps_per_solve/warm                              median: {warm_med}");

    // The bit-identity contract, checked end to end on both domains.
    let trajectory_match_researchers = pruned_trajectory_matches(&researchers_domain());
    let trajectory_match_cars = pruned_trajectory_matches(&cars_domain());
    println!("pruned_trajectory_match/researchers                {trajectory_match_researchers}");
    println!("pruned_trajectory_match/cars                       {trajectory_match_cars}");

    // Canonical perf-trajectory artifact at the repo root.
    use serde_json::Value;
    let result_entries: Vec<(String, Value)> = results
        .iter()
        .map(|(name, med, n)| {
            (
                name.clone(),
                Value::Object(vec![
                    ("median_ns".into(), Value::Num(*med as f64)),
                    ("samples".into(), Value::Num(*n as f64)),
                ]),
            )
        })
        .collect();
    let mut doc = vec![
        ("bench".to_string(), Value::Str("selection".into())),
        ("quick".to_string(), Value::Bool(quick)),
        ("results".to_string(), Value::Object(result_entries)),
        (
            "sweeps".to_string(),
            Value::Object(vec![
                ("cold_median".into(), Value::Num(cold_med as f64)),
                ("warm_median".into(), Value::Num(warm_med as f64)),
            ]),
        ),
        (
            "pruning".to_string(),
            Value::Object(vec![
                (
                    "pruned_median_ns".into(),
                    Value::Num(med_of(&results, "selection_step/pruned") as f64),
                ),
                (
                    "incremental_median_ns".into(),
                    Value::Num(med_of(&results, "selection_step/incremental") as f64),
                ),
                (
                    "exact_solve_fraction".into(),
                    Value::Num(exact_solve_fraction),
                ),
                (
                    "trajectory_match_researchers".into(),
                    Value::Bool(trajectory_match_researchers),
                ),
                (
                    "trajectory_match_cars".into(),
                    Value::Bool(trajectory_match_cars),
                ),
            ]),
        ),
    ];
    if emit_metrics {
        let rendered = l2q_obs::global().render_json();
        doc.push((
            "metrics".to_string(),
            serde_json::parse_value(&rendered).unwrap_or(Value::Null),
        ));
    }
    let doc = Value::Object(doc);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_selection.json");
    std::fs::write(out, serde_json::to_string_pretty(&doc).unwrap()).expect("write bench json");
    println!("wrote {out}");
}
