//! Criterion bench: search-engine throughput (index build and top-k
//! query-likelihood retrieval over a generated corpus).

use criterion::{criterion_group, criterion_main, Criterion};
use l2q_corpus::{generate, researchers_domain, CorpusConfig, EntityId};
use l2q_retrieval::SearchEngine;

fn bench_retrieval(c: &mut Criterion) {
    let corpus = std::sync::Arc::new(
        generate(
            &researchers_domain(),
            &CorpusConfig {
                n_entities: 60,
                ..CorpusConfig::default()
            },
        )
        .unwrap(),
    );

    c.bench_function("engine_build_60x30", |b| {
        b.iter(|| SearchEngine::with_defaults(corpus.clone()))
    });

    let engine = SearchEngine::with_defaults(corpus.clone());
    let seeds: Vec<(EntityId, Vec<_>)> = corpus
        .entity_ids()
        .take(16)
        .map(|e| (e, corpus.seed_query(e).to_vec()))
        .collect();
    c.bench_function("seed_search_top5", |b| {
        let mut i = 0;
        b.iter(|| {
            let (e, q) = &seeds[i % seeds.len()];
            i += 1;
            engine.search(*e, q)
        })
    });
}

criterion_group!(benches, bench_retrieval);
criterion_main!(benches);
