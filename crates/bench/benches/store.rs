//! Durable-store benchmark: the l2q-store write and recovery paths in
//! isolation, so the serving-overhead budget (`service_throughput`'s
//! store-enabled fleet) can be attributed to specific store operations.
//!
//! * `wal_append/{always,every8,never}` — one group-committed batch of 4
//!   step records under each fsync policy. The `always`/`never` gap is
//!   the price of crash-durability per batch.
//! * `snapshot_write` — one compacting snapshot of a 64-step session
//!   (atomic tmp + fsync + rename).
//! * `recover/{snapshot_only,wal_tail_64}` — cold `SessionStore::open` +
//!   `load`: a pure snapshot read vs a snapshot plus a 64-record WAL
//!   replay.
//!
//! Owns its `main` (the vendored criterion harness doesn't expose
//! medians programmatically) and always writes `BENCH_store.json` at the
//! repo root. `--quick` shrinks sample counts for CI.

use l2q_core::{PortableCollective, PortableHarvestState, PortableIteration};
use l2q_store::{FsyncPolicy, PortableSession, SessionStore, StoreConfig, WalRecord};
use std::path::PathBuf;
use std::time::Instant;

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("l2q-store-bench-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn collective(step: u64) -> PortableCollective {
    PortableCollective {
        r_phi: hex(0.25 + step as f64 * 0.01),
        rstar_phi: hex(0.5 + step as f64 * 0.01),
    }
}

fn step_record(session: u64, step: u64) -> WalRecord {
    WalRecord {
        session,
        step_index: step,
        query: vec![
            format!("entity{session}"),
            "research".into(),
            format!("word{step}"),
        ],
        new_pages: (0..6).map(|i| (step * 8 + i) as u32).collect(),
        selection_time_nanos: 1_000_000 + step * 1_000,
        collective: Some(collective(step)),
        finished: None,
        genesis: None,
    }
}

fn session_with_steps(id: u64, steps: u64) -> PortableSession {
    PortableSession {
        version: l2q_store::SESSION_FORMAT_VERSION,
        id,
        selector: "l2qbal".into(),
        domain_size: 3,
        n_queries: steps + 16,
        state: PortableHarvestState {
            version: 1,
            entity: 3,
            aspect: "RESEARCH".into(),
            seed_query: vec![format!("entity{id}"), "seed".into()],
            seed_results: (0..8).collect(),
            iterations: (0..steps)
                .map(|s| PortableIteration {
                    query: step_record(id, s).query,
                    new_pages: step_record(id, s).new_pages,
                })
                .collect(),
            selection_time_nanos: steps * 1_000_000,
            finished: None,
            collective: Some(collective(steps)),
        },
    }
}

fn median_ns(mut samples: Vec<u128>) -> u128 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn human(ns: u128) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Time `routine` `samples` times (after one warmup call) and report the
/// median in criterion-like one-line form. `routine` takes the sample
/// index so appends can advance step counters monotonically.
fn bench<F: FnMut(u64)>(name: &str, samples: usize, mut routine: F) -> (String, u128, usize) {
    routine(0); // warmup
    let mut times = Vec::with_capacity(samples);
    for i in 0..samples {
        let t0 = Instant::now();
        routine(i as u64 + 1);
        times.push(t0.elapsed().as_nanos());
    }
    let n = times.len();
    let med = median_ns(times);
    println!("{name:<50} time: [{} median, {n} samples]", human(med));
    (name.to_string(), med, n)
}

const BATCH: u64 = 4;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let samples = if quick { 20 } else { 200 };

    let mut results: Vec<(String, u128, usize)> = Vec::new();

    // WAL appends: one batch of BATCH step records per sample, fsync
    // policy varied. snapshot_every is huge so appends never compact.
    for (tag, fsync) in [
        ("always", FsyncPolicy::Always),
        ("every8", FsyncPolicy::EveryN(8)),
        ("never", FsyncPolicy::Never),
    ] {
        let dir = bench_dir(&format!("wal-{tag}"));
        let store = SessionStore::open(
            &dir,
            StoreConfig {
                fsync,
                snapshot_every: usize::MAX,
                keep_snapshots: 2,
            },
        )
        .expect("open store");
        results.push(bench(&format!("wal_append/{tag}"), samples, |i| {
            let base = i * BATCH;
            let batch: Vec<WalRecord> = (base..base + BATCH).map(|s| step_record(1, s)).collect();
            store.append_steps(1, &batch).expect("append");
        }));
        std::fs::remove_dir_all(&dir).ok();
    }

    // Snapshot writes: a 64-step session, default (fsync-on-snapshot)
    // config. Each sample rewrites the same generation family.
    {
        let dir = bench_dir("snapshot");
        let store = SessionStore::open(&dir, StoreConfig::default()).expect("open store");
        let session = session_with_steps(1, 64);
        results.push(bench("snapshot_write", samples, |_| {
            store.snapshot(1, &session).expect("snapshot");
        }));
        std::fs::remove_dir_all(&dir).ok();
    }

    // Recovery: cold open + load. Two shapes — a pure snapshot read, and
    // a snapshot plus a 64-record WAL tail to replay.
    {
        let dir = bench_dir("recover-snap");
        let store = SessionStore::open(&dir, StoreConfig::default()).expect("open store");
        store
            .snapshot(1, &session_with_steps(1, 64))
            .expect("snapshot");
        drop(store);
        results.push(bench("recover/snapshot_only", samples, |_| {
            let store = SessionStore::open(&dir, StoreConfig::default()).expect("open store");
            let rec = store.load(1).expect("load").expect("session exists");
            assert_eq!(rec.replayed_steps, 0);
        }));
        std::fs::remove_dir_all(&dir).ok();
    }
    {
        let dir = bench_dir("recover-tail");
        let store = SessionStore::open(
            &dir,
            StoreConfig {
                snapshot_every: usize::MAX,
                ..StoreConfig::default()
            },
        )
        .expect("open store");
        store
            .snapshot(1, &session_with_steps(1, 0))
            .expect("snapshot");
        let tail: Vec<WalRecord> = (0..64).map(|s| step_record(1, s)).collect();
        store.append_steps(1, &tail).expect("append tail");
        drop(store);
        results.push(bench("recover/wal_tail_64", samples, |_| {
            let store = SessionStore::open(&dir, StoreConfig::default()).expect("open store");
            let rec = store.load(1).expect("load").expect("session exists");
            assert_eq!(rec.replayed_steps, 64);
        }));
        std::fs::remove_dir_all(&dir).ok();
    }

    // Canonical perf-trajectory artifact at the repo root.
    use serde_json::Value;
    let result_entries: Vec<(String, Value)> = results
        .iter()
        .map(|(name, med, n)| {
            (
                name.clone(),
                Value::Object(vec![
                    ("median_ns".into(), Value::Num(*med as f64)),
                    ("samples".into(), Value::Num(*n as f64)),
                ]),
            )
        })
        .collect();
    let doc = Value::Object(vec![
        ("bench".to_string(), Value::Str("store".into())),
        ("quick".to_string(), Value::Bool(quick)),
        ("results".to_string(), Value::Object(result_entries)),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
    std::fs::write(out, serde_json::to_string_pretty(&doc).unwrap()).expect("write bench json");
    println!("wrote {out}");
}
