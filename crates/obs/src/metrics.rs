//! The metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Registration (name → handle) takes a short `RwLock`; handles are
//! `Arc`'d atomics so recording never locks. Metrics are keyed by name
//! plus an optional, order-insensitive label set, mirroring the Prometheus
//! data model closely enough that [`MetricsRegistry::render_text`] is a
//! valid scrape body.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotone, lock-free counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable, lock-free signed gauge (queue depths, session counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Self(AtomicI64::new(0))
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (negative to subtract).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram of non-negative `f64` observations.
///
/// Buckets are cumulative-upper-bound style (Prometheus `le`): observation
/// `v` lands in the first bucket whose bound is ≥ `v`, or the overflow
/// bucket past the last bound. Recording is lock-free: one binary search
/// plus three relaxed atomic updates (bucket, count, sum).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One per bound, plus the overflow bucket at the end.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations, stored as `f64` bits (CAS loop).
    sum_bits: AtomicU64,
    /// Per-bucket trace-id exemplars (0 = none): the trace id of the last
    /// traced sample landing in each bucket, so a tail bucket links a p99
    /// straight to a fetchable trace. Written only via
    /// [`record_with_exemplar`](Self::record_with_exemplar) — plain
    /// `record` never touches these.
    exemplars: Vec<AtomicU64>,
}

impl Histogram {
    /// Default latency buckets: 1µs rising by √2 per bucket to ~3000s
    /// (64 bounds), in seconds. Every power of 2 from the old doubling
    /// grid is still an edge (even indices land exactly on
    /// `1e-6 · 2^(i/2)`), with one extra edge splitting each former
    /// bucket, so p50/p95/p99 interpolation is within a factor of √2 of
    /// the true quantile anywhere in the range — tight enough that a
    /// handful of slow outliers in the next bucket up can no longer
    /// drag an interpolated p99 an order of magnitude away from the
    /// samples that produced it.
    pub fn latency() -> Self {
        Self::with_bounds(
            (0..64)
                .map(|i| {
                    let base = 1e-6 * f64::powi(2.0, i / 2);
                    if i % 2 == 0 {
                        base
                    } else {
                        base * std::f64::consts::SQRT_2
                    }
                })
                .collect(),
        )
    }

    /// Value buckets for small counts: 1 doubling to 2^20.
    pub fn counts() -> Self {
        Self::with_bounds((0..21).map(|i| f64::powi(2.0, i)).collect())
    }

    /// A histogram over explicit ascending bucket bounds.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly ascending"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        let exemplars = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
            exemplars,
        }
    }

    /// The ascending bucket upper bounds (excluding the +Inf overflow).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Record one observation (clamped to ≥ 0).
    pub fn record(&self, v: f64) {
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Record a wall-clock duration in seconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_secs_f64());
    }

    /// Record one observation and stamp its bucket's exemplar with the
    /// trace id of the request that produced it. Used by traced spans so
    /// a rendered histogram links its tail buckets to fetchable traces.
    pub fn record_with_exemplar(&self, v: f64, trace_id: u64) {
        let clamped = if v.is_finite() { v.max(0.0) } else { 0.0 };
        let idx = self.bounds.partition_point(|&b| b < clamped);
        self.exemplars[idx].store(trace_id, Ordering::Relaxed);
        self.record(v);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Quantile estimate by linear interpolation inside the bucket holding
    /// the rank (`q` clamped to [0, 1]; 0 when empty). The overflow bucket
    /// reports the last bound. Delegates to [`quantile_from_buckets`] —
    /// the same arithmetic the router uses on bucket-wise merged fleet
    /// histograms.
    pub fn quantile(&self, q: f64) -> f64 {
        let buckets: Vec<(f64, u64)> = self
            .bounds
            .iter()
            .zip(&self.buckets)
            .map(|(&le, n)| (le, n.load(Ordering::Relaxed)))
            .collect();
        let overflow = self.buckets[self.bounds.len()].load(Ordering::Relaxed);
        quantile_from_buckets(q, &buckets, overflow)
    }

    /// Point-in-time copy of this histogram's state.
    pub fn snapshot(&self, name: &str, labels: &[(String, String)]) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            labels: labels.to_vec(),
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            buckets: self
                .bounds
                .iter()
                .zip(&self.buckets)
                .map(|(&le, n)| (le, n.load(Ordering::Relaxed)))
                .collect(),
            overflow: self.buckets[self.bounds.len()].load(Ordering::Relaxed),
            exemplars: self
                .bounds
                .iter()
                .chain(std::iter::once(&f64::INFINITY))
                .zip(&self.exemplars)
                .filter_map(|(&le, t)| {
                    let tid = t.load(Ordering::Relaxed);
                    (tid != 0).then_some((le, tid))
                })
                .collect(),
        }
    }
}

/// Quantile by linear interpolation over `(upper bound, count)` buckets
/// in ascending bound order, plus an overflow count past the last bound.
///
/// This is the single quantile kernel: [`Histogram::quantile`] feeds it a
/// live histogram's buckets, and the router's `fleet_metrics` feeds it
/// bucket-wise *merged* shard histograms, so fleet-wide percentiles are
/// computed exactly like local ones. `q` is clamped to [0, 1]; an empty
/// distribution reports 0; ranks landing in the overflow bucket report
/// the last finite bound. The interpolation lower edge of bucket `i` is
/// the listed bound of bucket `i - 1` (0 for the first), so callers
/// merging sparse renderings should pass the union of all occupied
/// bounds.
pub fn quantile_from_buckets(q: f64, buckets: &[(f64, u64)], overflow: u64) -> f64 {
    let total: u64 = buckets.iter().map(|&(_, n)| n).sum::<u64>() + overflow;
    if total == 0 || buckets.is_empty() {
        return 0.0;
    }
    let target = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
    let mut cum = 0u64;
    for (i, &(le, n)) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let next = cum + n;
        if (next as f64) >= target {
            let lower = if i == 0 { 0.0 } else { buckets[i - 1].0 };
            let frac = (target - cum as f64) / n as f64;
            return lower + frac.clamp(0.0, 1.0) * (le - lower);
        }
        cum = next;
    }
    // Rank fell in the overflow bucket: no upper bound to interpolate to.
    buckets.last().map(|&(le, _)| le).unwrap_or(0.0)
}

/// Metric identity: name plus sorted labels.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: String,
    labels: Vec<(String, String)>,
}

impl Key {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }

    /// `name` or `name{k="v",...}` — the Prometheus series identity.
    fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let body: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        format!("{}{{{}}}", self.name, body.join(","))
    }
}

/// A registry of named metrics.
///
/// `register`-style lookups (`counter`, `gauge`, `histogram`) return the
/// existing handle when the (name, labels) key is already present, so any
/// number of call sites share one underlying atomic.
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<Key, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<Key, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<Key, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry (const: usable in statics).
    pub const fn new() -> Self {
        Self {
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        }
    }

    fn get_or_insert<T>(
        map: &RwLock<BTreeMap<Key, Arc<T>>>,
        key: Key,
        make: impl FnOnce() -> T,
    ) -> Arc<T> {
        if let Some(found) = map.read().expect("registry poisoned").get(&key) {
            return found.clone();
        }
        map.write()
            .expect("registry poisoned")
            .entry(key)
            .or_insert_with(|| Arc::new(make()))
            .clone()
    }

    /// The counter named `name` (registered on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// A labeled counter, e.g. `counter_with("wire_requests_total", &[("op", "step")])`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        Self::get_or_insert(&self.counters, Key::new(name, labels), Counter::new)
    }

    /// The gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// A labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        Self::get_or_insert(&self.gauges, Key::new(name, labels), Gauge::new)
    }

    /// The latency histogram named `name` (default 1µs–3000s √2 buckets).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// A labeled latency histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        Self::get_or_insert(&self.histograms, Key::new(name, labels), Histogram::latency)
    }

    /// A histogram with explicit bucket bounds (e.g. [`Histogram::counts`]
    /// shapes for candidate-pool sizes). Bounds apply on first
    /// registration; later calls return the existing instance.
    pub fn histogram_with_bounds(&self, name: &str, bounds: Vec<f64>) -> Arc<Histogram> {
        Self::get_or_insert(&self.histograms, Key::new(name, &[]), || {
            Histogram::with_bounds(bounds)
        })
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let value_of = |k: &Key, v: f64| MetricValue {
            name: k.name.clone(),
            labels: k.labels.clone(),
            series: k.render(),
            value: v,
        };
        let counters = self
            .counters
            .read()
            .expect("registry poisoned")
            .iter()
            .map(|(k, c)| value_of(k, c.get() as f64))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("registry poisoned")
            .iter()
            .map(|(k, g)| value_of(k, g.get() as f64))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("registry poisoned")
            .iter()
            .map(|(k, h)| h.snapshot(&k.name, &k.labels))
            .collect();
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Render the registry as a JSON object:
    /// `{"counters": {series: value}, "gauges": {...}, "histograms":
    /// {series: {count, sum, mean, p50, p95, p99, buckets}}}`.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"counters\":{");
        {
            let counters = self.counters.read().expect("registry poisoned");
            for (i, (k, c)) in counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, &k.render());
                out.push(':');
                out.push_str(&c.get().to_string());
            }
        }
        out.push_str("},\"gauges\":{");
        {
            let gauges = self.gauges.read().expect("registry poisoned");
            for (i, (k, g)) in gauges.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, &k.render());
                out.push(':');
                out.push_str(&g.get().to_string());
            }
        }
        out.push_str("},\"histograms\":{");
        {
            let histograms = self.histograms.read().expect("registry poisoned");
            for (i, (k, h)) in histograms.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let s = h.snapshot(&k.name, &k.labels);
                push_json_str(&mut out, &k.render());
                out.push_str(&format!(
                    ":{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
                    s.count,
                    json_num(s.sum),
                    json_num(if s.count == 0 { 0.0 } else { s.sum / s.count as f64 }),
                    json_num(s.p50),
                    json_num(s.p95),
                    json_num(s.p99),
                ));
                let mut first = true;
                for &(le, n) in &s.buckets {
                    if n == 0 {
                        continue; // sparse: only occupied buckets
                    }
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&format!("[{},{}]", json_num(le), n));
                }
                if s.overflow > 0 {
                    if !first {
                        out.push(',');
                    }
                    out.push_str(&format!("[null,{}]", s.overflow));
                }
                out.push(']');
                if !s.exemplars.is_empty() {
                    out.push_str(",\"exemplars\":[");
                    for (j, &(le, tid)) in s.exemplars.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        // Overflow exemplar renders with a null bound.
                        if le.is_finite() {
                            out.push_str(&format!("[{},{}]", json_num(le), tid));
                        } else {
                            out.push_str(&format!("[null,{tid}]"));
                        }
                    }
                    out.push(']');
                }
                out.push('}');
            }
        }
        out.push_str("}}");
        out
    }

    /// Render the registry as Prometheus text exposition (version 0.0.4):
    /// `# TYPE` comments, one `series value` line per counter/gauge, and
    /// cumulative `_bucket{le=...}` / `_sum` / `_count` lines per
    /// histogram.
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(1024);
        let mut last_name = String::new();
        {
            let counters = self.counters.read().expect("registry poisoned");
            for (k, c) in counters.iter() {
                if k.name != last_name {
                    out.push_str(&format!("# TYPE {} counter\n", k.name));
                    last_name = k.name.clone();
                }
                out.push_str(&format!("{} {}\n", k.render(), c.get()));
            }
        }
        last_name.clear();
        {
            let gauges = self.gauges.read().expect("registry poisoned");
            for (k, g) in gauges.iter() {
                if k.name != last_name {
                    out.push_str(&format!("# TYPE {} gauge\n", k.name));
                    last_name = k.name.clone();
                }
                out.push_str(&format!("{} {}\n", k.render(), g.get()));
            }
        }
        last_name.clear();
        {
            let histograms = self.histograms.read().expect("registry poisoned");
            for (k, h) in histograms.iter() {
                if k.name != last_name {
                    out.push_str(&format!("# TYPE {} histogram\n", k.name));
                    last_name = k.name.clone();
                }
                let s = h.snapshot(&k.name, &k.labels);
                let mut cum = 0u64;
                for &(le, n) in &s.buckets {
                    cum += n;
                    if n == 0 && cum == 0 {
                        continue; // skip the empty low tail
                    }
                    let mut labels: Vec<(String, String)> = k.labels.clone();
                    labels.push(("le".into(), format_le(le)));
                    out.push_str(&format!(
                        "{} {}\n",
                        render_series(&format!("{}_bucket", k.name), &labels),
                        cum
                    ));
                }
                cum += s.overflow;
                let mut labels: Vec<(String, String)> = k.labels.clone();
                labels.push(("le".into(), "+Inf".into()));
                out.push_str(&format!(
                    "{} {}\n",
                    render_series(&format!("{}_bucket", k.name), &labels),
                    cum
                ));
                out.push_str(&format!(
                    "{} {}\n",
                    render_series(&format!("{}_sum", k.name), &k.labels),
                    json_num(s.sum)
                ));
                out.push_str(&format!(
                    "{} {}\n",
                    render_series(&format!("{}_count", k.name), &k.labels),
                    s.count
                ));
            }
        }
        out
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

fn render_series(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{}{{{}}}", name, body.join(","))
}

fn format_le(le: f64) -> String {
    if le.is_infinite() {
        "+Inf".into()
    } else {
        format!("{le}")
    }
}

fn json_num(v: f64) -> String {
    if !v.is_finite() {
        "null".into()
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One counter or gauge in a [`RegistrySnapshot`].
#[derive(Clone, Debug)]
pub struct MetricValue {
    /// Metric name.
    pub name: String,
    /// Sorted labels.
    pub labels: Vec<(String, String)>,
    /// Rendered series identity (name plus labels).
    pub series: String,
    /// Current value.
    pub value: f64,
}

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Sorted labels.
    pub labels: Vec<(String, String)>,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Interpolated median.
    pub p50: f64,
    /// Interpolated 95th percentile.
    pub p95: f64,
    /// Interpolated 99th percentile.
    pub p99: f64,
    /// `(upper bound, non-cumulative count)` per bucket.
    pub buckets: Vec<(f64, u64)>,
    /// Observations past the last bound.
    pub overflow: u64,
    /// `(upper bound, trace id)` exemplars for buckets that hold one; the
    /// overflow bucket appears as `f64::INFINITY`.
    pub exemplars: Vec<(f64, u64)>,
}

/// Point-in-time copy of a whole registry.
#[derive(Clone, Debug)]
pub struct RegistrySnapshot {
    /// All counters.
    pub counters: Vec<MetricValue>,
    /// All gauges.
    pub gauges: Vec<MetricValue>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_share_state() {
        let r = MetricsRegistry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        assert!(Arc::ptr_eq(&a, &b));
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x_total").get(), 3);

        let g = r.gauge("depth");
        g.set(5);
        g.dec();
        assert_eq!(r.gauge("depth").get(), 4);

        // Distinct labels are distinct series.
        let l1 = r.counter_with("y_total", &[("op", "a")]);
        let l2 = r.counter_with("y_total", &[("op", "b")]);
        assert!(!Arc::ptr_eq(&l1, &l2));
        // Label order does not matter.
        let l3 = r.counter_with("z_total", &[("a", "1"), ("b", "2")]);
        let l4 = r.counter_with("z_total", &[("b", "2"), ("a", "1")]);
        assert!(Arc::ptr_eq(&l3, &l4));
    }

    #[test]
    fn concurrent_increments_lose_nothing() {
        let r = MetricsRegistry::new();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    let c = r.counter("hammer_total");
                    let h = r.histogram("hammer_seconds");
                    let g = r.gauge("hammer_depth");
                    for i in 0..per_thread {
                        c.inc();
                        g.inc();
                        h.record((i % 100) as f64 * 1e-5);
                    }
                });
            }
        });
        assert_eq!(r.counter("hammer_total").get(), threads * per_thread);
        assert_eq!(r.gauge("hammer_depth").get(), (threads * per_thread) as i64);
        let h = r.histogram("hammer_seconds");
        assert_eq!(h.count(), threads * per_thread);
        // Sum via CAS loop must equal the exact arithmetic sum.
        let per_thread_sum: f64 = (0..per_thread).map(|i| (i % 100) as f64 * 1e-5).sum();
        let expect = per_thread_sum * threads as f64;
        assert!(
            (h.sum() - expect).abs() < 1e-6,
            "sum {} != {expect}",
            h.sum()
        );
    }

    #[test]
    fn histogram_percentiles_track_a_known_distribution() {
        // 10_000 uniform samples over (0, 1]: p50 ≈ 0.5, p95 ≈ 0.95.
        let h = Histogram::latency();
        let n = 10_000;
        for i in 1..=n {
            h.record(i as f64 / n as f64);
        }
        // Doubling buckets: an interpolated quantile is within its
        // bucket, i.e. within a factor of 2 of the true value.
        let p50 = h.quantile(0.50);
        assert!((0.25..=1.0).contains(&p50), "p50 {p50}");
        let p95 = h.quantile(0.95);
        assert!((0.475..=1.0).contains(&p95), "p95 {p95}");
        let p99 = h.quantile(0.99);
        assert!(p99 >= p95, "quantiles must be monotone: {p99} < {p95}");
        assert!((h.mean() - 0.50005).abs() < 1e-3, "mean {}", h.mean());

        // A point mass interpolates inside one bucket: bounds of that
        // bucket bracket every quantile.
        let point = Histogram::latency();
        for _ in 0..1000 {
            point.record(0.003);
        }
        for q in [0.01, 0.5, 0.99] {
            let v = point.quantile(q);
            assert!((0.002..=0.0041).contains(&v), "q{q} = {v}");
        }
    }

    #[test]
    fn histogram_edge_cases() {
        let h = Histogram::latency();
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        assert_eq!(h.mean(), 0.0);
        h.record(-3.0); // clamped to 0
        h.record(f64::NAN); // clamped to 0
        h.record(1e9); // overflow bucket
        assert_eq!(h.count(), 3);
        let s = h.snapshot("h", &[]);
        assert_eq!(s.overflow, 1);
        // Overflow quantile reports the last finite bound.
        assert_eq!(h.quantile(1.0), *h.bounds().last().unwrap());
    }

    #[test]
    fn latency_buckets_are_sqrt2_spaced_with_power_of_two_edges() {
        let h = Histogram::latency();
        let bounds = h.bounds();
        assert_eq!(bounds.len(), 64);
        // Every edge of the old doubling grid is still present, bit for
        // bit, so dashboards keyed on those edges read identically.
        for (i, &b) in bounds.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(b, 1e-6 * f64::powi(2.0, (i / 2) as i32));
            }
        }
        // ...and no decade is skipped: consecutive edges differ by √2.
        for w in bounds.windows(2) {
            let ratio = w[1] / w[0];
            assert!(
                (ratio - std::f64::consts::SQRT_2).abs() < 1e-12,
                "bucket ratio {ratio} strays from √2"
            );
        }
    }

    /// Pin the worst-case relative interpolation error of the latency
    /// grid: any quantile of any point mass inside the range must come
    /// out within a factor of √2 of the true value. The old doubling
    /// grid only guaranteed a factor of 2, which was enough for a few
    /// slow `graph_solve_seconds` samples near the top of a wide bucket
    /// to interpolate into a p99 wildly unlike any recorded sample.
    #[test]
    fn interpolated_quantiles_stay_within_sqrt2_of_point_masses() {
        let lo: f64 = 1.1e-6;
        let hi: f64 = 1.0e3;
        let steps = 400;
        let max_allowed = std::f64::consts::SQRT_2 * (1.0 + 1e-9);
        let mut worst = 1.0f64;
        for s in 0..=steps {
            let v = lo * (hi / lo).powf(s as f64 / steps as f64);
            let h = Histogram::latency();
            for _ in 0..100 {
                h.record(v);
            }
            for q in [0.5, 0.9, 0.95, 0.99] {
                let est = h.quantile(q);
                let ratio = (est / v).max(v / est);
                worst = worst.max(ratio);
                assert!(
                    ratio <= max_allowed,
                    "q{q} of a point mass at {v}: estimated {est}, \
                     relative error {ratio} exceeds √2"
                );
            }
        }
        assert!(worst > 1.0, "sweep exercised interpolation");
    }

    /// Regression for the motivating bug: a bimodal solve-time
    /// distribution (thousands of ~3.5ms solves, a handful of ~250ms
    /// ones) whose p99 falls inside the slow bucket. The interpolated
    /// p99 must stay within √2 of the slow mode instead of landing on a
    /// fictitious value no sample ever produced.
    #[test]
    fn bimodal_solve_times_interpolate_to_a_real_p99() {
        let h = Histogram::latency();
        for _ in 0..100 {
            h.record(0.0035);
        }
        for _ in 0..5 {
            h.record(0.25);
        }
        let p99 = h.quantile(0.99);
        let ratio = (p99 / 0.25).max(0.25 / p99);
        assert!(
            ratio <= std::f64::consts::SQRT_2,
            "p99 {p99} is not within √2 of the slow mode at 0.25s"
        );
    }

    #[test]
    fn empty_histogram_quantiles_are_defined_and_finite() {
        let h = Histogram::latency();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v.is_finite(), "q{q} must be finite on empty, got {v}");
            assert_eq!(v, 0.0, "empty histogram reports 0 at q{q}");
        }
        let s = h.snapshot("empty", &[]);
        assert!(s.p50.is_finite() && s.p95.is_finite() && s.p99.is_finite());
        assert_eq!((s.p50, s.p95, s.p99), (0.0, 0.0, 0.0));
    }

    #[test]
    fn single_sample_quantiles_bracket_the_sample() {
        let h = Histogram::latency();
        h.record(0.003);
        // 0.003 lands in the (0.002048, 0.004096] bucket; every quantile
        // interpolates inside that bucket.
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(
                (0.002048..=0.004096).contains(&v),
                "q{q} = {v} escapes the sample's bucket"
            );
        }
    }

    #[test]
    fn all_overflow_histogram_reports_the_last_bound() {
        let h = Histogram::latency();
        let last = *h.bounds().last().unwrap();
        for _ in 0..100 {
            h.record(last * 10.0);
        }
        for q in [0.01, 0.5, 0.99] {
            assert_eq!(h.quantile(q), last, "overflow-only q{q}");
        }
        let s = h.snapshot("of", &[]);
        assert_eq!(s.overflow, 100);
        assert_eq!(s.count, 100);
        assert!(s.buckets.iter().all(|&(_, n)| n == 0));
    }

    #[test]
    fn quantile_is_exact_at_bucket_boundaries() {
        // Fill bucket (0.001024, 0.002048] completely: ranks that land
        // exactly on the bucket's edges interpolate to the bounds
        // themselves.
        let h = Histogram::with_bounds(vec![0.001024, 0.002048, 0.004096]);
        for _ in 0..100 {
            h.record(0.002);
        }
        // target = max(q * 100, 1); frac = (target - 0) / 100.
        assert_eq!(h.quantile(1.0), 0.002048, "top edge is the upper bound");
        // q = 0.01 → target 1 → frac 0.01: one sample-width above lower.
        let low = h.quantile(0.01);
        let width = 0.002048 - 0.001024;
        assert!((low - (0.001024 + 0.01 * width)).abs() < 1e-12);
        // Mixed buckets: with 50 samples below the bound and 50 above,
        // the median is exactly the shared boundary.
        let m = Histogram::with_bounds(vec![0.001, 0.002, 0.004]);
        for _ in 0..50 {
            m.record(0.0015); // (0.001, 0.002]
        }
        for _ in 0..50 {
            m.record(0.003); // (0.002, 0.004]
        }
        assert_eq!(m.quantile(0.5), 0.002, "median at the bucket boundary");
    }

    #[test]
    fn doubling_buckets_pin_the_2x_relative_error_claim() {
        // lib.rs claims interpolated quantiles on ×2 buckets are within
        // ~2× of the true quantile. Pin it on a uniform distribution over
        // (0, 1]: true quantile of q is q itself.
        let h = Histogram::latency();
        let n = 100_000;
        for i in 1..=n {
            h.record(i as f64 / n as f64);
        }
        for q in [0.05, 0.25, 0.5, 0.9, 0.95, 0.99] {
            let est = h.quantile(q);
            let truth = q;
            let ratio = est / truth;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "q{q}: estimate {est} vs true {truth} (ratio {ratio}) breaks the 2x bound"
            );
        }
    }

    #[test]
    fn quantile_from_buckets_matches_live_histogram_and_hand_merge() {
        let a = Histogram::latency();
        let b = Histogram::latency();
        for i in 0..400u32 {
            a.record(1e-5 * (1 + i % 37) as f64);
            b.record(3e-4 * (1 + i % 11) as f64);
        }
        b.record(1e9); // one overflow sample on shard b

        // The standalone kernel over a histogram's own buckets IS its
        // quantile (shared implementation, sanity-checked here).
        let sa = a.snapshot("s", &[]);
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(
                quantile_from_buckets(q, &sa.buckets, sa.overflow),
                a.quantile(q)
            );
        }

        // Hand-merge the two shards bucket-wise and compare against a
        // single histogram fed both streams — the "true fleet" histogram.
        let merged: Vec<(f64, u64)> = sa
            .buckets
            .iter()
            .zip(&b.snapshot("s", &[]).buckets)
            .map(|(&(le, na), &(_, nb))| (le, na + nb))
            .collect();
        let merged_overflow = sa.overflow + b.snapshot("s", &[]).overflow;
        let fleet = Histogram::latency();
        for i in 0..400u32 {
            fleet.record(1e-5 * (1 + i % 37) as f64);
            fleet.record(3e-4 * (1 + i % 11) as f64);
        }
        fleet.record(1e9);
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(
                quantile_from_buckets(q, &merged, merged_overflow),
                fleet.quantile(q),
                "merged quantile q{q} must equal the single-histogram truth"
            );
        }
    }

    #[test]
    fn exemplars_record_per_bucket_and_render() {
        let h = Histogram::latency();
        h.record(0.003); // plain record: no exemplar
        h.record_with_exemplar(0.003, 0xabcd);
        h.record_with_exemplar(1e9, 0x1234); // overflow bucket
        let s = h.snapshot("ex", &[]);
        assert!(s.exemplars.contains(&(0.004096, 0xabcd)));
        assert!(s
            .exemplars
            .iter()
            .any(|&(le, tid)| le.is_infinite() && tid == 0x1234));

        let r = MetricsRegistry::new();
        let hr = r.histogram("ex_seconds");
        hr.record_with_exemplar(0.003, 77);
        let json = r.render_json();
        assert!(
            json.contains("\"exemplars\":[[0.004096,77]]"),
            "json: {json}"
        );
        // Untouched histograms render no exemplars key.
        let r2 = MetricsRegistry::new();
        r2.histogram("plain_seconds").record(0.1);
        assert!(!r2.render_json().contains("exemplars"));
    }

    #[test]
    fn render_text_is_prometheus_shaped() {
        let r = MetricsRegistry::new();
        r.counter("steps_total").add(7);
        r.counter_with("req_total", &[("op", "step")]).add(2);
        r.gauge("queue_depth").set(3);
        let h = r.histogram("lat_seconds");
        h.record(0.01);
        h.record(0.02);
        let text = r.render_text();
        assert!(text.contains("# TYPE steps_total counter\nsteps_total 7\n"));
        assert!(text.contains("req_total{op=\"step\"} 2\n"));
        assert!(text.contains("# TYPE queue_depth gauge\nqueue_depth 3\n"));
        assert!(text.contains("# TYPE lat_seconds histogram\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("lat_seconds_count 2\n"));
        // Cumulative buckets end at the total count.
        let inf_line = text
            .lines()
            .find(|l| l.starts_with("lat_seconds_bucket{le=\"+Inf\"}"))
            .unwrap();
        assert!(inf_line.ends_with(" 2"));
    }

    #[test]
    fn render_json_parses_structurally() {
        let r = MetricsRegistry::new();
        r.counter("a_total").inc();
        r.gauge("g").set(-2);
        r.histogram("h_seconds").record(0.5);
        let json = r.render_json();
        // Shape checks without a JSON parser (obs is dependency-free).
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"a_total\":1"));
        assert!(json.contains("\"g\":-2"));
        assert!(json.contains("\"h_seconds\":{\"count\":1"));
        assert!(json.contains("\"p95\":"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn snapshot_carries_every_metric() {
        let r = MetricsRegistry::new();
        r.counter("c_total").add(4);
        r.gauge("g").set(9);
        r.histogram("h_seconds").record(0.25);
        let s = r.snapshot();
        assert_eq!(s.counters.len(), 1);
        assert_eq!(s.counters[0].value, 4.0);
        assert_eq!(s.gauges[0].value, 9.0);
        assert_eq!(s.histograms[0].count, 1);
        assert!(s.histograms[0].p50 > 0.0);
    }
}
