//! Distributed tracing: per-request trace contexts, RAII span records,
//! and a bounded per-process ring buffer of finished spans.
//!
//! A trace is born at the edge (the router, or the server when a client
//! talks to it directly) as a [`TraceContext`] and is carried across
//! process boundaries on the wire (`trace_id` + `parent_span_id` request
//! fields). Inside a process the active context lives in a thread-local
//! stack: [`enter`] adopts a context for the current thread (RAII guard),
//! and every [`SpanTimer`](crate::SpanTimer) started through the
//! [`span!`](crate::span) macro while a context is active appends one
//! [`SpanRecord`] — a child of whatever span was current — into the
//! process-wide [`TraceBuffer`] when it drops.
//!
//! The buffer is bounded and overwrite-oldest: an atomic cursor
//! `fetch_add` claims a slot, so recording never blocks on readers and
//! old spans age out instead of growing memory. When **no** context is
//! active, none of this runs — the untraced fast path of a span is
//! exactly what it was before tracing existed (one histogram record).
//!
//! Ids are 48-bit outputs of a splitmix64 stream (seeded per process), so
//! they survive a JSON `f64` round-trip exactly.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Ids are masked to 48 bits so they survive JSON number (`f64`)
/// round-trips bit-exactly (f64 is integral-exact through 2^53).
const ID_MASK: u64 = (1 << 48) - 1;

/// Default ring capacity (spans); override with [`configure_capacity`].
pub const DEFAULT_BUFFER_CAPACITY: usize = 8192;

/// The cross-process trace coordinates of the *current* span.
///
/// `span_id == 0` is the anchor sentinel: a context adopted at the edge
/// before any span has started. The first span recorded under an anchor
/// becomes a root span (no parent).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Identity of the whole request tree (shared by every span in it).
    pub trace_id: u64,
    /// The current span (0 = anchor: no span started yet).
    pub span_id: u64,
    /// The current span's parent, when it has one.
    pub parent_span_id: Option<u64>,
}

impl TraceContext {
    /// A fresh trace rooted here: new trace id, no spans yet. Counts one
    /// `traces_recorded_total`.
    pub fn new_root() -> Self {
        crate::global().counter("traces_recorded_total").inc();
        Self {
            trace_id: next_id(),
            span_id: 0,
            parent_span_id: None,
        }
    }

    /// Adopt a context received over the wire: spans started under it
    /// become children of `parent_span_id` (recorded by the sender), or
    /// roots of `trace_id` when the sender did not name a parent.
    pub fn remote(trace_id: u64, parent_span_id: Option<u64>) -> Self {
        Self {
            trace_id,
            span_id: parent_span_id.unwrap_or(0),
            parent_span_id: None,
        }
    }

    /// The wire fields to propagate downstream from this context:
    /// `(trace_id, parent_span_id)` for the receiver's spans.
    pub fn wire_parent(&self) -> (u64, Option<u64>) {
        let parent = if self.span_id == 0 {
            None
        } else {
            Some(self.span_id)
        };
        (self.trace_id, parent)
    }
}

/// One finished span, as stored in the [`TraceBuffer`].
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique within the process's id stream).
    pub span_id: u64,
    /// Parent span, `None` for a root.
    pub parent_span_id: Option<u64>,
    /// Span name (the `span!` name, without the `_seconds` suffix).
    pub name: &'static str,
    /// Labels captured at span start.
    pub labels: Vec<(String, String)>,
    /// Wall-clock start, nanoseconds since the Unix epoch (for ordering
    /// across processes; durations come from the monotone clock).
    pub start_unix_ns: u64,
    /// Monotone duration of the span in nanoseconds.
    pub dur_ns: u64,
    /// `"ok"` unless the span was explicitly marked otherwise.
    pub status: &'static str,
}

// ---------------------------------------------------------------------------
// Id generation: one atomic counter through the splitmix64 finalizer,
// seeded per process so two shards never collide in practice.

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

static ID_STATE: OnceLock<AtomicU64> = OnceLock::new();

fn id_state() -> &'static AtomicU64 {
    ID_STATE.get_or_init(|| {
        let pid = std::process::id() as u64;
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        AtomicU64::new(splitmix64(pid ^ now))
    })
}

/// A fresh 48-bit, non-zero trace/span id.
pub fn next_id() -> u64 {
    loop {
        let raw = id_state().fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(raw) & ID_MASK;
        if id != 0 {
            return id;
        }
    }
}

/// Nanoseconds since the Unix epoch right now.
pub fn now_unix_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Thread-local context stack.

thread_local! {
    static CURRENT: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
}

/// The innermost active context on this thread, if any.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(|c| c.borrow().last().copied())
}

/// Make `ctx` the current context for this thread until the returned
/// guard drops. Used at process edges (request dispatch, scheduler
/// workers) to adopt a wire-carried or freshly rooted context.
pub fn enter(ctx: TraceContext) -> ContextGuard {
    CURRENT.with(|c| c.borrow_mut().push(ctx));
    ContextGuard { ctx }
}

/// RAII guard for [`enter`]; restores the previous context on drop.
#[derive(Debug)]
pub struct ContextGuard {
    ctx: TraceContext,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        remove_ctx(&self.ctx);
    }
}

/// Remove the innermost stack entry matching `ctx` (tolerates
/// out-of-order drops of sibling guards).
fn remove_ctx(ctx: &TraceContext) {
    CURRENT.with(|c| {
        let mut stack = c.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|e| e == ctx) {
            stack.remove(pos);
        }
    });
}

// ---------------------------------------------------------------------------
// Span lifecycle used by SpanTimer (crate-internal).

/// A started, not-yet-recorded span (crate-internal: SpanTimer state).
#[derive(Debug)]
pub(crate) struct ActiveSpan {
    pub(crate) ctx: TraceContext,
    pub(crate) name: &'static str,
    pub(crate) labels: Vec<(String, String)>,
    pub(crate) start_unix_ns: u64,
}

/// Start a span as a child of the current context (or a root under an
/// anchor). Returns `None` — and does nothing — when no context is
/// active: the untraced fast path.
pub(crate) fn begin(name: &'static str, labels: &[(&str, &str)]) -> Option<ActiveSpan> {
    let parent = current()?;
    let ctx = TraceContext {
        trace_id: parent.trace_id,
        span_id: next_id(),
        parent_span_id: if parent.span_id == 0 {
            None
        } else {
            Some(parent.span_id)
        },
    };
    CURRENT.with(|c| c.borrow_mut().push(ctx));
    Some(ActiveSpan {
        ctx,
        name,
        labels: labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
        start_unix_ns: now_unix_ns(),
    })
}

/// Finish a started span: pop it off the context stack and append its
/// record to the process buffer.
pub(crate) fn end(span: ActiveSpan, dur: Duration, status: &'static str) {
    remove_ctx(&span.ctx);
    buffer().record(SpanRecord {
        trace_id: span.ctx.trace_id,
        span_id: span.ctx.span_id,
        parent_span_id: span.ctx.parent_span_id,
        name: span.name,
        labels: span.labels,
        start_unix_ns: span.start_unix_ns,
        dur_ns: dur.as_nanos() as u64,
        status,
    });
}

/// Abandon a started span without recording it (SpanTimer::cancel).
pub(crate) fn abandon(span: ActiveSpan) {
    remove_ctx(&span.ctx);
}

/// Record an already-measured duration as a completed child span of the
/// current context — for durations that cross threads and cannot be an
/// RAII scope (e.g. scheduler queue wait, measured from the enqueue
/// timestamp). No-op (returns `None`) without an active context.
pub fn record_span(name: &'static str, dur: Duration) -> Option<u64> {
    let parent = current()?;
    let span_id = next_id();
    let dur_ns = dur.as_nanos() as u64;
    buffer().record(SpanRecord {
        trace_id: parent.trace_id,
        span_id,
        parent_span_id: if parent.span_id == 0 {
            None
        } else {
            Some(parent.span_id)
        },
        name,
        labels: Vec::new(),
        start_unix_ns: now_unix_ns().saturating_sub(dur_ns),
        dur_ns,
        status: "ok",
    });
    Some(span_id)
}

// ---------------------------------------------------------------------------
// The bounded span ring buffer.

/// A bounded, overwrite-oldest ring of finished spans.
///
/// Writers claim a slot with one atomic `fetch_add`; each slot is guarded
/// by its own (uncontended) mutex because a [`SpanRecord`] is not a
/// fixed-size atomic cell and this crate forbids unsafe code. Readers
/// walk the slots and clone what matches.
#[derive(Debug)]
pub struct TraceBuffer {
    slots: Vec<Mutex<Option<SpanRecord>>>,
    cursor: AtomicUsize,
}

impl TraceBuffer {
    /// A ring holding at most `capacity` spans (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Ring capacity in spans.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Append one span, overwriting the oldest when full.
    pub fn record(&self, rec: SpanRecord) {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        let mut slot = self.slots[i]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *slot = Some(rec);
        crate::global().counter("trace_spans_recorded_total").inc();
    }

    fn scan<T>(&self, mut f: impl FnMut(&SpanRecord) -> Option<T>) -> Vec<T> {
        let mut out = Vec::new();
        for slot in &self.slots {
            let guard = slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            if let Some(rec) = guard.as_ref() {
                if let Some(v) = f(rec) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Every buffered span of one trace, ordered by start time.
    pub fn by_trace(&self, trace_id: u64) -> Vec<SpanRecord> {
        let mut spans = self.scan(|r| (r.trace_id == trace_id).then(|| r.clone()));
        spans.sort_by_key(|r| (r.start_unix_ns, r.span_id));
        spans
    }

    /// The most recently started `limit` spans, newest first.
    pub fn recent(&self, limit: usize) -> Vec<SpanRecord> {
        let mut spans = self.scan(|r| Some(r.clone()));
        spans.sort_by_key(|s| std::cmp::Reverse(s.start_unix_ns));
        spans.truncate(limit);
        spans
    }

    /// The slowest `limit` *root* spans (no parent), slowest first — the
    /// entry point for "what were my worst requests".
    pub fn slow_roots(&self, limit: usize) -> Vec<SpanRecord> {
        let mut roots = self.scan(|r| r.parent_span_id.is_none().then(|| r.clone()));
        roots.sort_by_key(|r| std::cmp::Reverse(r.dur_ns));
        roots.truncate(limit);
        roots
    }
}

static BUFFER: OnceLock<TraceBuffer> = OnceLock::new();
static CONFIGURED_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_BUFFER_CAPACITY);

/// Set the global buffer's capacity. Effective only before the first
/// span is recorded (the ring is built once); later calls are ignored.
pub fn configure_capacity(capacity: usize) {
    CONFIGURED_CAPACITY.store(capacity.max(1), Ordering::Relaxed);
}

/// The process-wide span ring buffer.
pub fn buffer() -> &'static TraceBuffer {
    BUFFER.get_or_init(|| TraceBuffer::new(CONFIGURED_CAPACITY.load(Ordering::Relaxed)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_nonzero_48bit_and_distinct() {
        let a = next_id();
        let b = next_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert!(a <= ID_MASK && b <= ID_MASK);
    }

    #[test]
    fn context_stack_nests_and_restores() {
        assert_eq!(current(), None);
        let root = TraceContext::new_root();
        {
            let _g = enter(root);
            assert_eq!(current(), Some(root));
            let inner = TraceContext {
                trace_id: root.trace_id,
                span_id: next_id(),
                parent_span_id: None,
            };
            {
                let _g2 = enter(inner);
                assert_eq!(current(), Some(inner));
            }
            assert_eq!(current(), Some(root));
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn remote_context_parents_spans_under_the_wire_parent() {
        let ctx = TraceContext::remote(77, Some(42));
        let _g = enter(ctx);
        let span = begin("child", &[]).expect("context active");
        assert_eq!(span.ctx.trace_id, 77);
        assert_eq!(span.ctx.parent_span_id, Some(42));
        abandon(span);

        // An anchor (no wire parent) roots the first span.
        let _g2 = enter(TraceContext::remote(78, None));
        let span = begin("root", &[]).expect("context active");
        assert_eq!(span.ctx.parent_span_id, None);
        abandon(span);
    }

    #[test]
    fn ring_overwrites_oldest_and_queries_work() {
        let buf = TraceBuffer::new(4);
        for i in 0..6u64 {
            buf.record(SpanRecord {
                trace_id: 9,
                span_id: 100 + i,
                parent_span_id: if i == 0 { None } else { Some(100) },
                name: "t",
                labels: Vec::new(),
                start_unix_ns: 1_000 + i,
                dur_ns: 10 * (i + 1),
                status: "ok",
            });
        }
        // Capacity 4: spans 0 and 1 were overwritten.
        let spans = buf.by_trace(9);
        assert_eq!(spans.len(), 4);
        assert!(spans.iter().all(|s| s.span_id >= 102));
        // Ordered by start time.
        assert!(spans
            .windows(2)
            .all(|w| w[0].start_unix_ns <= w[1].start_unix_ns));
        // recent() is newest-first and bounded.
        let recent = buf.recent(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].span_id, 105);

        // A root span in another trace shows up in slow_roots.
        buf.record(SpanRecord {
            trace_id: 10,
            span_id: 500,
            parent_span_id: None,
            name: "root",
            labels: Vec::new(),
            start_unix_ns: 2_000,
            dur_ns: 999_999,
            status: "ok",
        });
        let slow = buf.slow_roots(8);
        assert_eq!(slow.first().map(|s| s.span_id), Some(500));
        assert!(slow.iter().all(|s| s.parent_span_id.is_none()));
    }

    #[test]
    fn record_span_attaches_to_current_context() {
        assert_eq!(record_span("orphan", Duration::from_millis(1)), None);
        let root = TraceContext::new_root();
        let _g = enter(root);
        let id = record_span("queued", Duration::from_millis(2)).expect("context active");
        let spans = buffer().by_trace(root.trace_id);
        let rec = spans.iter().find(|s| s.span_id == id).expect("recorded");
        assert_eq!(rec.name, "queued");
        assert_eq!(rec.parent_span_id, None, "anchor context roots the span");
        assert!(rec.dur_ns >= 2_000_000);
    }
}
