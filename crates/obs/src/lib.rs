//! # l2q-obs — observability substrate for the L2Q stack
//!
//! The build environment has no registry access, so instead of `tracing` +
//! `prometheus` this crate provides a small, zero-dependency,
//! API-compatible substrate (the same approach as `vendor/`):
//!
//! * [`MetricsRegistry`] — named counters, gauges and fixed-bucket latency
//!   histograms. Registration takes a short lock; the returned handles are
//!   `Arc`'d atomics, so the hot path (increment / record) is lock-free.
//! * [`global()`] — the process-wide registry every instrumented crate
//!   records into, rendered two ways: [`MetricsRegistry::render_json`]
//!   (the `metrics` wire op) and [`MetricsRegistry::render_text`]
//!   (Prometheus-style exposition).
//! * [`span!`] — an RAII timer: `let _s = span!("graph_solve");` records
//!   the scope's wall-clock into the `graph_solve_seconds` histogram of
//!   the global registry when the guard drops. While a [`trace`] context
//!   is active on the thread, the same guard additionally appends a
//!   causally-linked span record to the process trace buffer and stamps
//!   the histogram sample's bucket with the trace id (an exemplar).
//! * [`trace`] — distributed tracing: [`trace::TraceContext`] carried
//!   across process boundaries on the wire, a thread-local context stack,
//!   and the bounded overwrite-oldest [`trace::TraceBuffer`] ring that
//!   the `trace` wire op serves span trees from.
//! * [`events`] — an optional structured JSON event sink for per-step
//!   harvest traces. Disabled by default; the fast path is one relaxed
//!   atomic load.
//!
//! Histogram quantiles (p50/p95/p99) are estimated by linear interpolation
//! within the bucket containing the rank — exact at bucket boundaries,
//! bounded by the bucket's width otherwise (buckets grow ×2, so the
//! relative error of a quantile estimate is at most ~2×).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod metrics;
pub mod span;
pub mod trace;

pub use events::{
    emit, events_enabled, set_event_sink, to_json_line, EventSink, FieldValue, JsonLinesSink,
};
pub use metrics::{
    quantile_from_buckets, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry,
    RegistrySnapshot,
};
pub use span::SpanTimer;
pub use trace::{SpanRecord, TraceBuffer, TraceContext};

static GLOBAL: MetricsRegistry = MetricsRegistry::new();

/// The process-wide registry every instrumented crate records into.
pub fn global() -> &'static MetricsRegistry {
    &GLOBAL
}

/// Time a scope into a `<name>_seconds` histogram of the global registry.
///
/// ```
/// {
///     let _span = l2q_obs::span!("graph_solve");
///     // ... timed work ...
/// } // recorded into histogram "graph_solve_seconds" here
/// ```
///
/// Labels take literal values (zero-cost series lookup) or arbitrary
/// expressions rendered with `ToString` (dynamic series — shard names,
/// ops, strategies):
///
/// ```
/// let shard = String::from("alpha");
/// let _s = l2q_obs::span!("router_forward", "shard" => shard);
/// ```
///
/// When a [`trace`] context is active on the thread, the guard also
/// records a trace span named `$name` (labels included) parented under
/// the current span.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::SpanTimer::start_named(
            $crate::global().histogram(concat!($name, "_seconds")),
            $name,
        )
    };
    ($name:literal, $($k:literal => $v:literal),+ $(,)?) => {
        $crate::SpanTimer::start_named_labeled(
            $crate::global().histogram_with(concat!($name, "_seconds"), &[$(($k, $v)),+]),
            $name,
            &[$(($k, $v)),+],
        )
    };
    ($name:literal, $($k:literal => $v:expr),+ $(,)?) => {{
        let __vals = [$(::std::string::ToString::to_string(&$v)),+];
        let __labels: ::std::vec::Vec<(&str, &str)> = [$($k),+]
            .iter()
            .copied()
            .zip(__vals.iter().map(|v| v.as_str()))
            .collect();
        $crate::SpanTimer::start_named_labeled(
            $crate::global().histogram_with(concat!($name, "_seconds"), &__labels),
            $name,
            &__labels,
        )
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn span_macro_records_into_global_registry() {
        {
            let _s = crate::span!("obs_selftest");
        }
        {
            let _s = crate::span!("obs_selftest", "kind" => "labeled");
        }
        let snap = crate::global().snapshot();
        let plain = snap
            .histograms
            .iter()
            .find(|h| h.name == "obs_selftest_seconds" && h.labels.is_empty())
            .expect("plain span histogram registered");
        assert!(plain.count >= 1);
        assert!(snap
            .histograms
            .iter()
            .any(|h| h.name == "obs_selftest_seconds"
                && h.labels == vec![("kind".to_string(), "labeled".to_string())]));
    }

    #[test]
    fn span_macro_accepts_expression_labels() {
        let shard = String::from("alpha-7");
        let n = 3u32;
        {
            let _s = crate::span!("obs_expr_label", "shard" => shard, "n" => n);
        }
        // Mixed literal + expression values go through the expr arm too.
        {
            let _s = crate::span!("obs_expr_label", "shard" => format!("b{}", 1), "n" => "lit");
        }
        let snap = crate::global().snapshot();
        let series: Vec<_> = snap
            .histograms
            .iter()
            .filter(|h| h.name == "obs_expr_label_seconds")
            .collect();
        assert!(series.iter().any(|h| h.labels
            == vec![
                ("n".to_string(), "3".to_string()),
                ("shard".to_string(), "alpha-7".to_string())
            ]));
        assert!(series.iter().any(|h| h.labels
            == vec![
                ("n".to_string(), "lit".to_string()),
                ("shard".to_string(), "b1".to_string())
            ]));
    }

    #[test]
    fn span_macro_records_trace_spans_under_an_active_context() {
        let ctx = crate::trace::TraceContext::new_root();
        {
            let _g = crate::trace::enter(ctx);
            let _outer = crate::span!("obs_traced_outer");
            let _inner = crate::span!("obs_traced_inner", "shard" => String::from("x"));
        }
        let spans = crate::trace::buffer().by_trace(ctx.trace_id);
        let outer = spans.iter().find(|s| s.name == "obs_traced_outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "obs_traced_inner").unwrap();
        assert_eq!(outer.parent_span_id, None);
        assert_eq!(inner.parent_span_id, Some(outer.span_id));
        assert_eq!(inner.labels, vec![("shard".to_string(), "x".to_string())]);
        // The traced sample left an exemplar pointing back at the trace.
        let snap = crate::global().snapshot();
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "obs_traced_outer_seconds")
            .unwrap();
        assert!(h.exemplars.iter().any(|&(_, tid)| tid == ctx.trace_id));
    }
}
