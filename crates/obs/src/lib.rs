//! # l2q-obs — observability substrate for the L2Q stack
//!
//! The build environment has no registry access, so instead of `tracing` +
//! `prometheus` this crate provides a small, zero-dependency,
//! API-compatible substrate (the same approach as `vendor/`):
//!
//! * [`MetricsRegistry`] — named counters, gauges and fixed-bucket latency
//!   histograms. Registration takes a short lock; the returned handles are
//!   `Arc`'d atomics, so the hot path (increment / record) is lock-free.
//! * [`global()`] — the process-wide registry every instrumented crate
//!   records into, rendered two ways: [`MetricsRegistry::render_json`]
//!   (the `metrics` wire op) and [`MetricsRegistry::render_text`]
//!   (Prometheus-style exposition).
//! * [`span!`] — an RAII timer: `let _s = span!("graph_solve");` records
//!   the scope's wall-clock into the `graph_solve_seconds` histogram of
//!   the global registry when the guard drops.
//! * [`events`] — an optional structured JSON event sink for per-step
//!   harvest traces. Disabled by default; the fast path is one relaxed
//!   atomic load.
//!
//! Histogram quantiles (p50/p95/p99) are estimated by linear interpolation
//! within the bucket containing the rank — exact at bucket boundaries,
//! bounded by the bucket's width otherwise (buckets grow ×2, so the
//! relative error of a quantile estimate is at most ~2×).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod metrics;
pub mod span;

pub use events::{
    emit, events_enabled, set_event_sink, to_json_line, EventSink, FieldValue, JsonLinesSink,
};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, RegistrySnapshot,
};
pub use span::SpanTimer;

static GLOBAL: MetricsRegistry = MetricsRegistry::new();

/// The process-wide registry every instrumented crate records into.
pub fn global() -> &'static MetricsRegistry {
    &GLOBAL
}

/// Time a scope into a `<name>_seconds` histogram of the global registry.
///
/// ```
/// {
///     let _span = l2q_obs::span!("graph_solve");
///     // ... timed work ...
/// } // recorded into histogram "graph_solve_seconds" here
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::SpanTimer::start($crate::global().histogram(concat!($name, "_seconds")))
    };
    ($name:literal, $($k:literal => $v:literal),+ $(,)?) => {
        $crate::SpanTimer::start(
            $crate::global().histogram_with(concat!($name, "_seconds"), &[$(($k, $v)),+]),
        )
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn span_macro_records_into_global_registry() {
        {
            let _s = crate::span!("obs_selftest");
        }
        {
            let _s = crate::span!("obs_selftest", "kind" => "labeled");
        }
        let snap = crate::global().snapshot();
        let plain = snap
            .histograms
            .iter()
            .find(|h| h.name == "obs_selftest_seconds" && h.labels.is_empty())
            .expect("plain span histogram registered");
        assert!(plain.count >= 1);
        assert!(snap
            .histograms
            .iter()
            .any(|h| h.name == "obs_selftest_seconds"
                && h.labels == vec![("kind".to_string(), "labeled".to_string())]));
    }
}
