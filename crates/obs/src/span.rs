//! RAII scope timing: a [`SpanTimer`] records its lifetime into a
//! histogram when dropped. The [`span!`](crate::span) macro is the
//! ergonomic front end over the global registry.

use crate::metrics::Histogram;
use std::sync::Arc;
use std::time::Instant;

/// Times a scope into a histogram; records on drop.
#[derive(Debug)]
pub struct SpanTimer {
    hist: Arc<Histogram>,
    start: Instant,
    armed: bool,
}

impl SpanTimer {
    /// Start timing into `hist`.
    pub fn start(hist: Arc<Histogram>) -> Self {
        Self {
            hist,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }

    /// Record now and disarm (drop becomes a no-op). Returns the recorded
    /// duration.
    pub fn finish(mut self) -> std::time::Duration {
        let d = self.start.elapsed();
        self.hist.record_duration(d);
        self.armed = false;
        d
    }

    /// Disarm without recording (e.g. an error path that should not skew
    /// the latency distribution).
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record_duration(self.start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn drop_records_exactly_once() {
        let r = MetricsRegistry::new();
        let h = r.histogram("s_seconds");
        {
            let _t = SpanTimer::start(h.clone());
        }
        assert_eq!(h.count(), 1);
        let d = SpanTimer::start(h.clone()).finish();
        assert_eq!(h.count(), 2);
        assert!(d.as_secs_f64() >= 0.0);
        SpanTimer::start(h.clone()).cancel();
        assert_eq!(h.count(), 2, "canceled span must not record");
    }

    #[test]
    fn elapsed_is_monotone() {
        let r = MetricsRegistry::new();
        let t = SpanTimer::start(r.histogram("m_seconds"));
        let a = t.elapsed();
        let b = t.elapsed();
        assert!(b >= a);
    }
}
