//! RAII scope timing: a [`SpanTimer`] records its lifetime into a
//! histogram when dropped. The [`span!`](crate::span) macro is the
//! ergonomic front end over the global registry.
//!
//! A timer started through one of the `start_named*` constructors is also
//! a *tracing* span: when a [`trace::TraceContext`](crate::trace) is
//! active on the thread, the timer additionally appends a
//! [`SpanRecord`](crate::trace::SpanRecord) (a child of the current span)
//! to the process trace buffer, and tags the histogram sample with the
//! trace id as an exemplar. Without an active context the named
//! constructors cost exactly what [`SpanTimer::start`] does — one
//! thread-local read on start, one histogram record on drop.

use crate::metrics::Histogram;
use crate::trace;
use std::sync::Arc;
use std::time::Instant;

/// Times a scope into a histogram; records on drop.
#[derive(Debug)]
pub struct SpanTimer {
    hist: Arc<Histogram>,
    start: Instant,
    armed: bool,
    traced: Option<trace::ActiveSpan>,
    status: &'static str,
}

impl SpanTimer {
    /// Start timing into `hist` (metrics only — never traced).
    pub fn start(hist: Arc<Histogram>) -> Self {
        Self {
            hist,
            start: Instant::now(),
            armed: true,
            traced: None,
            status: "ok",
        }
    }

    /// Start a named span: timed into `hist`, and recorded as a trace
    /// span called `name` when a trace context is active on this thread.
    pub fn start_named(hist: Arc<Histogram>, name: &'static str) -> Self {
        Self::start_named_labeled(hist, name, &[])
    }

    /// [`start_named`](Self::start_named) with labels attached to the
    /// trace span (label materialization is skipped when untraced).
    pub fn start_named_labeled(
        hist: Arc<Histogram>,
        name: &'static str,
        labels: &[(&str, &str)],
    ) -> Self {
        let traced = trace::begin(name, labels);
        Self {
            hist,
            start: Instant::now(),
            armed: true,
            traced,
            status: "ok",
        }
    }

    /// The trace context of this span, when it is traced.
    pub fn trace_context(&self) -> Option<trace::TraceContext> {
        self.traced.as_ref().map(|s| s.ctx)
    }

    /// Mark the span's trace status (e.g. `"error"`, `"maxed"`); shows up
    /// in the recorded span, not in the histogram. No-op when untraced.
    pub fn set_status(&mut self, status: &'static str) {
        self.status = status;
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }

    /// Record now and disarm (drop becomes a no-op). Returns the recorded
    /// duration.
    pub fn finish(mut self) -> std::time::Duration {
        self.record()
    }

    /// Disarm without recording (e.g. an error path that should not skew
    /// the latency distribution). A traced span is abandoned unrecorded.
    pub fn cancel(mut self) {
        self.armed = false;
        if let Some(span) = self.traced.take() {
            trace::abandon(span);
        }
    }

    fn record(&mut self) -> std::time::Duration {
        let d = self.start.elapsed();
        self.armed = false;
        match self.traced.take() {
            None => self.hist.record_duration(d),
            Some(span) => {
                self.hist
                    .record_with_exemplar(d.as_secs_f64(), span.ctx.trace_id);
                trace::end(span, d, self.status);
            }
        }
        d
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if self.armed {
            self.record();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::trace::{buffer, enter, TraceContext};

    #[test]
    fn drop_records_exactly_once() {
        let r = MetricsRegistry::new();
        let h = r.histogram("s_seconds");
        {
            let _t = SpanTimer::start(h.clone());
        }
        assert_eq!(h.count(), 1);
        let d = SpanTimer::start(h.clone()).finish();
        assert_eq!(h.count(), 2);
        assert!(d.as_secs_f64() >= 0.0);
        SpanTimer::start(h.clone()).cancel();
        assert_eq!(h.count(), 2, "canceled span must not record");
    }

    #[test]
    fn elapsed_is_monotone() {
        let r = MetricsRegistry::new();
        let t = SpanTimer::start(r.histogram("m_seconds"));
        let a = t.elapsed();
        let b = t.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn named_span_without_context_records_no_trace() {
        let r = MetricsRegistry::new();
        let h = r.histogram("plain_seconds");
        let t = SpanTimer::start_named(h.clone(), "plain");
        assert!(t.trace_context().is_none());
        drop(t);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn named_span_under_context_builds_a_parented_record() {
        let r = MetricsRegistry::new();
        let root_ctx = TraceContext::new_root();
        let _g = enter(root_ctx);
        let outer = SpanTimer::start_named(r.histogram("outer_seconds"), "outer");
        let outer_id = outer.trace_context().expect("traced").span_id;
        {
            let mut inner = SpanTimer::start_named_labeled(
                r.histogram("inner_seconds"),
                "inner",
                &[("k", "v")],
            );
            inner.set_status("maxed");
        }
        drop(outer);
        let spans = buffer().by_trace(root_ctx.trace_id);
        let outer_rec = spans.iter().find(|s| s.name == "outer").expect("outer");
        let inner_rec = spans.iter().find(|s| s.name == "inner").expect("inner");
        assert_eq!(outer_rec.parent_span_id, None, "anchored span is a root");
        assert_eq!(inner_rec.parent_span_id, Some(outer_id));
        assert_eq!(inner_rec.labels, vec![("k".into(), "v".into())]);
        assert_eq!(inner_rec.status, "maxed");
        assert_eq!(outer_rec.status, "ok");
    }

    #[test]
    fn canceled_traced_span_leaves_no_record_and_pops_context() {
        let r = MetricsRegistry::new();
        let ctx = TraceContext::new_root();
        let _g = enter(ctx);
        let t = SpanTimer::start_named(r.histogram("c_seconds"), "cancel_me");
        t.cancel();
        assert_eq!(
            crate::trace::current().map(|c| c.span_id),
            Some(0),
            "cancel must restore the anchor context"
        );
        assert!(buffer()
            .by_trace(ctx.trace_id)
            .iter()
            .all(|s| s.name != "cancel_me"));
    }
}
