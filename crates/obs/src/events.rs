//! Structured trace events: an optional global sink receiving one
//! (name, fields) record per call, e.g. one per harvest step.
//!
//! Disabled by default. The fast path for instrumented code is
//! [`events_enabled`] — one relaxed atomic load — so callers can skip
//! building field values entirely when no sink is installed.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One typed field value of an event.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

macro_rules! impl_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $conv)
            }
        }
    )*};
}
impl_from!(u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
           usize => U64 as u64, i32 => I64 as i64, i64 => I64 as i64, f64 => F64 as f64);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// Receives structured events; implementations must be thread-safe.
pub trait EventSink: Send + Sync {
    /// Handle one event.
    fn emit(&self, name: &str, fields: &[(&str, FieldValue)]);
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn EventSink>>> = RwLock::new(None);

/// Whether a sink is installed. Instrumented code should gate field
/// construction on this (one relaxed atomic load when disabled).
pub fn events_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install (or, with `None`, remove) the global event sink.
pub fn set_event_sink(sink: Option<Arc<dyn EventSink>>) {
    let mut slot = SINK.write().expect("event sink poisoned");
    ENABLED.store(sink.is_some(), Ordering::Relaxed);
    *slot = sink;
}

/// Emit one event to the installed sink (no-op when none).
pub fn emit(name: &str, fields: &[(&str, FieldValue)]) {
    if !events_enabled() {
        return;
    }
    if let Some(sink) = SINK.read().expect("event sink poisoned").as_ref() {
        sink.emit(name, fields);
    }
}

/// Render one event as a JSON line: `{"event":name, k: v, ...}`.
pub fn to_json_line(name: &str, fields: &[(&str, FieldValue)]) -> String {
    let mut out = String::with_capacity(64);
    out.push_str("{\"event\":");
    push_str_json(&mut out, name);
    for (k, v) in fields {
        out.push(',');
        push_str_json(&mut out, k);
        out.push(':');
        match v {
            FieldValue::U64(n) => out.push_str(&n.to_string()),
            FieldValue::I64(n) => out.push_str(&n.to_string()),
            FieldValue::F64(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            FieldValue::Str(s) => push_str_json(&mut out, s),
        }
    }
    out.push('}');
    out
}

fn push_str_json(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A sink writing one JSON line per event to any writer (file, stderr).
pub struct JsonLinesSink {
    out: Mutex<Box<dyn Write + Send>>,
    emitted: AtomicU64,
}

impl JsonLinesSink {
    /// Wrap a writer.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        Self {
            out: Mutex::new(out),
            emitted: AtomicU64::new(0),
        }
    }

    /// Open (truncate) a file at `path` as the sink target.
    pub fn to_file(path: &str) -> std::io::Result<Self> {
        Ok(Self::new(Box::new(std::fs::File::create(path)?)))
    }

    /// Events written so far.
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }
}

impl EventSink for JsonLinesSink {
    fn emit(&self, name: &str, fields: &[(&str, FieldValue)]) {
        let line = to_json_line(name, fields);
        let mut out = self.out.lock().expect("event writer poisoned");
        // A dead writer must not take the harvest loop down with it.
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
        self.emitted.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_renders_every_field_type() {
        let line = to_json_line(
            "step",
            &[
                ("n", 3u32.into()),
                ("delta", (-1i64).into()),
                ("secs", 0.25f64.into()),
                ("done", true.into()),
                ("query", "alice \"research\"".into()),
            ],
        );
        assert_eq!(
            line,
            "{\"event\":\"step\",\"n\":3,\"delta\":-1,\"secs\":0.25,\
             \"done\":true,\"query\":\"alice \\\"research\\\"\"}"
        );
    }

    #[test]
    fn sink_collects_lines() {
        #[derive(Default)]
        struct Capture(Mutex<Vec<String>>);
        impl EventSink for Capture {
            fn emit(&self, name: &str, fields: &[(&str, FieldValue)]) {
                self.0.lock().unwrap().push(to_json_line(name, fields));
            }
        }
        // The sink slot is process-global: restore whatever was there.
        let cap = Arc::new(Capture::default());
        assert!(!events_enabled());
        set_event_sink(Some(cap.clone()));
        assert!(events_enabled());
        emit("a", &[("x", 1u64.into())]);
        emit("b", &[]);
        set_event_sink(None);
        assert!(!events_enabled());
        emit("c", &[]); // dropped
        let lines = cap.0.lock().unwrap();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"a\""));
    }

    #[test]
    fn json_lines_sink_writes_and_counts() {
        let dir = std::env::temp_dir().join(format!("l2q_obs_sink_{}", std::process::id()));
        let path = dir.to_string_lossy().to_string();
        let sink = JsonLinesSink::to_file(&path).unwrap();
        sink.emit("x", &[("k", "v".into())]);
        sink.emit("y", &[]);
        assert_eq!(sink.emitted(), 2);
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 2);
        assert!(body.starts_with("{\"event\":\"x\""));
        let _ = std::fs::remove_file(&path);
    }
}
