//! Corpus generation configuration.

/// Knobs controlling corpus scale and page composition.
///
/// Defaults are laptop-friendly; [`CorpusConfig::paper_scale_researchers`] matches the
/// paper's reported corpus sizes (996 researchers / 143 cars, ~50 pages per
/// entity).
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Number of entities to generate.
    pub n_entities: usize,
    /// Pages collected per entity (paper: "we attempted to collect 50 pages
    /// from the Web" per entity).
    pub pages_per_entity: usize,
    /// RNG seed; the whole corpus is a pure function of config + spec.
    pub seed: u64,
    /// Guaranteed number of pages per entity whose *focus* is each aspect,
    /// assigned round-robin before weighted sampling takes over. Ensures
    /// every entity–aspect pair has recall signal even for rare aspects.
    pub min_focus_pages_per_aspect: usize,
    /// Bounds (inclusive) on non-identity paragraphs per page.
    pub paragraphs_per_page: (usize, usize),
    /// Probability that a paragraph follows the page's focus label rather
    /// than being drawn from the global aspect mixture.
    pub focus_fidelity: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            n_entities: 120,
            pages_per_entity: 30,
            seed: 42,
            min_focus_pages_per_aspect: 2,
            paragraphs_per_page: (3, 7),
            focus_fidelity: 0.7,
        }
    }
}

impl CorpusConfig {
    /// Configuration for a given entity count, other knobs default.
    pub fn with_entities(n_entities: usize) -> Self {
        Self {
            n_entities,
            ..Self::default()
        }
    }

    /// The paper's reported scale for the researchers domain.
    pub fn paper_scale_researchers() -> Self {
        Self {
            n_entities: 996,
            pages_per_entity: 50,
            ..Self::default()
        }
    }

    /// The paper's reported scale for the cars domain.
    pub fn paper_scale_cars() -> Self {
        Self {
            n_entities: 143,
            pages_per_entity: 50,
            ..Self::default()
        }
    }

    /// A tiny configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            n_entities: 8,
            pages_per_entity: 12,
            seed: 7,
            min_focus_pages_per_aspect: 1,
            paragraphs_per_page: (2, 4),
            focus_fidelity: 0.7,
        }
    }

    /// Set the seed (builder style).
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_entities == 0 {
            return Err("n_entities must be positive".into());
        }
        if self.pages_per_entity == 0 {
            return Err("pages_per_entity must be positive".into());
        }
        let (lo, hi) = self.paragraphs_per_page;
        if lo > hi {
            return Err("paragraphs_per_page bounds inverted".into());
        }
        if !(0.0..=1.0).contains(&self.focus_fidelity) {
            return Err("focus_fidelity must be in [0,1]".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        CorpusConfig::default().validate().unwrap();
        CorpusConfig::tiny().validate().unwrap();
        CorpusConfig::paper_scale_researchers().validate().unwrap();
        CorpusConfig::paper_scale_cars().validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(CorpusConfig {
            n_entities: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CorpusConfig {
            paragraphs_per_page: (5, 2),
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CorpusConfig {
            focus_fidelity: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn paper_scale_matches_reported_sizes() {
        assert_eq!(CorpusConfig::paper_scale_researchers().n_entities, 996);
        assert_eq!(CorpusConfig::paper_scale_cars().n_entities, 143);
        assert_eq!(CorpusConfig::paper_scale_cars().pages_per_entity, 50);
    }
}
