//! Pages and paragraphs.
//!
//! A page is the retrieval unit; the paper additionally segments pages into
//! paragraphs "to enable a finer granularity of evaluation" and classifies
//! each paragraph w.r.t. the target aspect. We keep both granularities:
//! [`Paragraph`]s carry their ground-truth [`ParagraphLabel`], and a
//! [`Page`] is relevant to an aspect iff it contains at least one relevant
//! paragraph.

use crate::aspect::{AspectId, ParagraphLabel};
use crate::entity::EntityId;
use l2q_text::{Bow, Sym};
use std::fmt;

/// Identifier of a page within a corpus (dense, starts at 0).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageId({})", self.0)
    }
}

/// A paragraph: a labelled word sequence.
#[derive(Clone, Debug)]
pub struct Paragraph {
    /// Ground-truth label (used to *train* aspect classifiers; the running
    /// system uses classifier output as Y, exactly like the paper).
    pub label: ParagraphLabel,
    /// Interned word sequence.
    pub words: Vec<Sym>,
}

/// A web page: an ordered list of paragraphs about one entity.
#[derive(Clone, Debug)]
pub struct Page {
    /// Dense id within its corpus.
    pub id: PageId,
    /// The entity this page is about.
    pub entity: EntityId,
    /// The page's paragraphs.
    pub paragraphs: Vec<Paragraph>,
    /// Cached bag-of-words over all paragraphs.
    bow: Bow,
}

impl Page {
    /// Assemble a page, computing its bag-of-words.
    pub fn new(id: PageId, entity: EntityId, paragraphs: Vec<Paragraph>) -> Self {
        let mut words = Vec::new();
        for p in &paragraphs {
            words.extend_from_slice(&p.words);
        }
        let bow = Bow::from_words(&words);
        Self {
            id,
            entity,
            paragraphs,
            bow,
        }
    }

    /// Bag-of-words over the whole page.
    pub fn bow(&self) -> &Bow {
        &self.bow
    }

    /// All words of the page in order (concatenated paragraphs).
    pub fn words(&self) -> impl Iterator<Item = Sym> + '_ {
        self.paragraphs.iter().flat_map(|p| p.words.iter().copied())
    }

    /// Total token count.
    pub fn len(&self) -> u64 {
        self.bow.len()
    }

    /// Whether the page has no tokens.
    pub fn is_empty(&self) -> bool {
        self.bow.is_empty()
    }

    /// Ground truth: is the page relevant to `aspect` (≥1 relevant
    /// paragraph)?
    pub fn truth_relevant(&self, aspect: AspectId) -> bool {
        self.paragraphs
            .iter()
            .any(|p| p.label.is_relevant_to(aspect))
    }

    /// Number of paragraphs relevant to `aspect`.
    pub fn relevant_paragraphs(&self, aspect: AspectId) -> usize {
        self.paragraphs
            .iter()
            .filter(|p| p.label.is_relevant_to(aspect))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn para(label: ParagraphLabel, ids: &[u32]) -> Paragraph {
        Paragraph {
            label,
            words: ids.iter().copied().map(Sym).collect(),
        }
    }

    #[test]
    fn page_bow_spans_paragraphs() {
        let page = Page::new(
            PageId(0),
            EntityId(0),
            vec![
                para(ParagraphLabel::Background, &[1, 2]),
                para(ParagraphLabel::Aspect(AspectId(0)), &[2, 3]),
            ],
        );
        assert_eq!(page.bow().tf(Sym(2)), 2);
        assert_eq!(page.len(), 4);
        assert_eq!(page.words().count(), 4);
    }

    #[test]
    fn truth_relevance_requires_matching_paragraph() {
        let page = Page::new(
            PageId(0),
            EntityId(0),
            vec![
                para(ParagraphLabel::Aspect(AspectId(1)), &[1]),
                para(ParagraphLabel::Aspect(AspectId(1)), &[2]),
                para(ParagraphLabel::Background, &[3]),
            ],
        );
        assert!(page.truth_relevant(AspectId(1)));
        assert!(!page.truth_relevant(AspectId(0)));
        assert_eq!(page.relevant_paragraphs(AspectId(1)), 2);
        assert_eq!(page.relevant_paragraphs(AspectId(0)), 0);
    }

    #[test]
    fn empty_page() {
        let page = Page::new(PageId(0), EntityId(0), vec![]);
        assert!(page.is_empty());
        assert!(!page.truth_relevant(AspectId(0)));
    }
}
