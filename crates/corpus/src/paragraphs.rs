//! Paragraph-granularity view of a corpus.
//!
//! The paper segments each page into paragraphs "to enable a finer
//! granularity of evaluation … (Note that query selection is orthogonal
//! to the retrieval units used.)" — i.e. the whole pipeline can run with
//! paragraphs as the retrieval unit. [`explode_to_paragraphs`] derives a
//! corpus whose "pages" are the original corpus's individual paragraphs:
//! the same symbols, types and tokenizer, with entity slices rebuilt, so
//! the engine, the classifiers' oracle, the reinforcement graph and the
//! evaluation all operate per paragraph without any further change.

use crate::corpus::Corpus;
use crate::page::{Page, PageId};

/// Mapping from exploded paragraph-units back to their source.
#[derive(Clone, Debug)]
pub struct ParagraphOrigin {
    /// For each unit (by its new `PageId` index): the original page.
    pub source_page: Vec<PageId>,
    /// For each unit: the paragraph index within the original page.
    pub paragraph_index: Vec<u32>,
}

impl ParagraphOrigin {
    /// The original `(page, paragraph)` of an exploded unit.
    pub fn of(&self, unit: PageId) -> (PageId, u32) {
        (
            self.source_page[unit.index()],
            self.paragraph_index[unit.index()],
        )
    }
}

/// Derive a corpus whose retrieval units are the paragraphs of `corpus`.
///
/// Empty paragraphs are dropped (they cannot be retrieved). Each unit
/// keeps its ground-truth label, so `truth_relevant` and the trained
/// classifiers behave identically at the finer granularity.
pub fn explode_to_paragraphs(corpus: &Corpus) -> (Corpus, ParagraphOrigin) {
    let mut pages = Vec::new();
    let mut page_range = Vec::with_capacity(corpus.entities.len());
    let mut source_page = Vec::new();
    let mut paragraph_index = Vec::new();
    let mut seeds = Vec::with_capacity(corpus.entities.len());

    for e in corpus.entity_ids() {
        let start = pages.len() as u32;
        for page in corpus.pages_of(e) {
            for (pi, para) in page.paragraphs.iter().enumerate() {
                if para.words.is_empty() {
                    continue;
                }
                let unit = Page::new(PageId(pages.len() as u32), e, vec![para.clone()]);
                pages.push(unit);
                source_page.push(page.id);
                paragraph_index.push(pi as u32);
            }
        }
        page_range.push((start, pages.len() as u32));
        seeds.push(corpus.seed_query(e).to_vec());
    }

    let exploded = Corpus::assemble(
        corpus.domain,
        corpus.aspect_names.clone(),
        corpus.types.clone(),
        corpus.tokenizer.clone(),
        corpus.symbols.clone(),
        corpus.entities.clone(),
        pages,
        page_range,
        seeds,
    );
    (
        exploded,
        ParagraphOrigin {
            source_page,
            paragraph_index,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::researchers_domain;
    use crate::generator::generate;
    use crate::CorpusConfig;

    fn corpus() -> Corpus {
        generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap()
    }

    #[test]
    fn explode_preserves_paragraph_count_and_labels() {
        let c = corpus();
        let (units, origin) = explode_to_paragraphs(&c);
        assert_eq!(units.pages.len(), c.paragraph_count());
        assert_eq!(units.entities.len(), c.entities.len());
        // Every unit has exactly one paragraph, matching its origin.
        for unit in &units.pages {
            assert_eq!(unit.paragraphs.len(), 1);
            let (src, pi) = origin.of(unit.id);
            let original = &c.page(src).paragraphs[pi as usize];
            assert_eq!(unit.paragraphs[0].label, original.label);
            assert_eq!(unit.paragraphs[0].words, original.words);
            assert_eq!(unit.entity, c.page(src).entity);
        }
    }

    #[test]
    fn aspect_frequencies_are_preserved() {
        let c = corpus();
        let (units, _) = explode_to_paragraphs(&c);
        assert_eq!(units.paragraph_frequency(), c.paragraph_frequency());
    }

    #[test]
    fn entity_slices_are_contiguous_and_complete() {
        let c = corpus();
        let (units, _) = explode_to_paragraphs(&c);
        let mut total = 0;
        for e in units.entity_ids() {
            let slice = units.pages_of(e);
            assert!(!slice.is_empty());
            for u in slice {
                assert_eq!(u.entity, e);
            }
            total += slice.len();
        }
        assert_eq!(total, units.pages.len());
    }

    #[test]
    fn seed_queries_carry_over() {
        let c = corpus();
        let (units, _) = explode_to_paragraphs(&c);
        for e in c.entity_ids() {
            assert_eq!(units.seed_query(e), c.seed_query(e));
        }
    }
}
