//! Domain specifications: what a domain's entities, types, aspects and
//! paragraph-generation templates look like.
//!
//! A [`DomainSpec`] is the declarative recipe the [`crate::generator`]
//! executes. The two built-in recipes ([`crate::domains::researchers`] and
//! [`crate::domains::cars`]) mirror the paper's two evaluation domains.

use crate::types::{TypeId, TypeSystem};

/// One unit of a paragraph-generation template.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GenUnit {
    /// Literal text (possibly several words; tokenized when emitted).
    Lit(&'static str),
    /// One of the *entity's own* attribute values of the given type —
    /// this is what creates entity-specific, aspect-indicative words.
    Attr(TypeId),
    /// A random word from the type's global vocabulary (not tied to the
    /// entity) — background colour.
    AnyOfType(TypeId),
    /// The entity's name.
    Name,
    /// A random domain noise word.
    Noise,
}

/// A paragraph-generation template: a sequence of units.
#[derive(Clone, Debug)]
pub struct GenTemplate {
    /// Units emitted left to right.
    pub units: Vec<GenUnit>,
}

impl GenTemplate {
    /// Build from a compact pattern string where `{type}` inserts one of
    /// the entity's attribute values, `{*type}` a random vocabulary word of
    /// the type, `{name}` the entity name, `{noise}` a noise word, and
    /// everything else is literal text.
    ///
    /// ```
    /// use l2q_corpus::spec::GenTemplate;
    /// use l2q_corpus::types::TypeSystem;
    /// let mut ts = TypeSystem::new();
    /// ts.declare("topic");
    /// let t = GenTemplate::parse("research on {topic} at {name}", &ts);
    /// assert_eq!(t.units.len(), 4);
    /// ```
    ///
    /// # Panics
    /// Panics if a referenced type is not declared — domain specs are
    /// compiled-in data, so this is a programming error caught by tests.
    pub fn parse(pattern: &'static str, types: &TypeSystem) -> Self {
        let mut units = Vec::new();
        let mut rest = pattern;
        while let Some(open) = rest.find('{') {
            let (lit, tail) = rest.split_at(open);
            if !lit.trim().is_empty() {
                units.push(GenUnit::Lit(lit.trim()));
            }
            let close = tail
                .find('}')
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern: {pattern}"));
            let slot = &tail[1..close];
            let unit = match slot {
                "name" => GenUnit::Name,
                "noise" => GenUnit::Noise,
                s if s.starts_with('*') => {
                    GenUnit::AnyOfType(types.get(&s[1..]).unwrap_or_else(|| {
                        panic!("unknown type '{}' in pattern: {pattern}", &s[1..])
                    }))
                }
                s => GenUnit::Attr(
                    types
                        .get(s)
                        .unwrap_or_else(|| panic!("unknown type '{s}' in pattern: {pattern}")),
                ),
            };
            units.push(unit);
            rest = &tail[close + 1..];
        }
        if !rest.trim().is_empty() {
            units.push(GenUnit::Lit(rest.trim()));
        }
        Self { units }
    }
}

/// An aspect of the domain, with its generation recipe.
#[derive(Clone, Debug)]
pub struct AspectSpec {
    /// Upper-case aspect name as in the paper's Fig. 9 (e.g. `RESEARCH`).
    pub name: &'static str,
    /// Relative paragraph frequency weight (the paper's corpora are heavily
    /// skewed: RESEARCH 107K vs EMPLOYMENT 3K).
    pub weight: f64,
    /// Paragraph templates for this aspect.
    pub templates: Vec<GenTemplate>,
}

/// How many attribute values of a type each entity draws.
#[derive(Clone, Copy, Debug)]
pub struct AttrDef {
    /// The attribute's type.
    pub ty: TypeId,
    /// Minimum number of values (inclusive).
    pub min: usize,
    /// Maximum number of values (inclusive).
    pub max: usize,
}

/// How an attribute value is produced.
#[derive(Clone, Debug)]
pub enum AttrSource {
    /// Sample without replacement from the type's vocabulary.
    Vocabulary,
    /// Synthesize a fresh value per entity from a pattern; `#` emits a
    /// random digit and `{name0}` the first name token. Used for emails,
    /// urls and phone numbers, which are entity-unique.
    Synth(&'static str),
}

/// Full attribute schema entry.
#[derive(Clone, Debug)]
pub struct SchemaEntry {
    /// Count bounds.
    pub def: AttrDef,
    /// Value source.
    pub source: AttrSource,
}

/// A complete domain recipe.
#[derive(Clone, Debug)]
pub struct DomainSpec {
    /// Domain name (`researchers` / `cars`).
    pub name: &'static str,
    /// The domain's type system (shared by generation and templates).
    pub types: TypeSystem,
    /// The seven evaluated aspects.
    pub aspects: Vec<AspectSpec>,
    /// Entity attribute schema.
    pub schema: Vec<SchemaEntry>,
    /// Background-paragraph templates (label = Background).
    pub background: Vec<GenTemplate>,
    /// Identity-paragraph templates (always background; mention name +
    /// identifying attributes so the seed query works).
    pub identity: Vec<GenTemplate>,
    /// Footer/header boilerplate (always background): navigation menus and
    /// site chrome appended to most pages. This is what gives generic
    /// aspect words their high document frequency on the real Web — they
    /// appear on nearly every page regardless of the page's topic.
    pub footers: Vec<GenTemplate>,
    /// Probability that a page carries a footer paragraph.
    pub footer_prob: f64,
    /// Noise vocabulary.
    pub noise: Vec<&'static str>,
    /// Relative weight of background pages/paragraphs vs aspect ones.
    pub background_weight: f64,
    /// Name-pool components used to mint unique entity names.
    pub name_parts: NameParts,
}

/// Components for minting unique entity names.
#[derive(Clone, Debug)]
pub struct NameParts {
    /// First components (first names / makes).
    pub first: Vec<&'static str>,
    /// Second components (last names / models).
    pub second: Vec<&'static str>,
    /// Type to register the full entity name under (e.g. ⟨person⟩/⟨model⟩).
    pub name_type: TypeId,
    /// Extra seed-query token source: a type whose first entity value is
    /// appended to the name to form the seed query (paper: name +
    /// institute), or `None` to use the bare name.
    pub seed_extra: Option<TypeId>,
}

impl DomainSpec {
    /// Look up an aspect id by name.
    pub fn aspect_by_name(&self, name: &str) -> Option<crate::aspect::AspectId> {
        self.aspects
            .iter()
            .position(|a| a.name.eq_ignore_ascii_case(name))
            .map(|i| crate::aspect::AspectId(i as u8))
    }

    /// Number of aspects.
    pub fn aspect_count(&self) -> usize {
        self.aspects.len()
    }

    /// Validate internal consistency (every referenced type declared, every
    /// aspect has templates, weights positive). Called by the generator.
    pub fn validate(&self) -> Result<(), String> {
        if self.aspects.is_empty() {
            return Err("domain has no aspects".into());
        }
        for a in &self.aspects {
            if a.templates.is_empty() {
                return Err(format!("aspect {} has no templates", a.name));
            }
            if a.weight <= 0.0 {
                return Err(format!("aspect {} has non-positive weight", a.name));
            }
        }
        if self.identity.is_empty() {
            return Err("domain has no identity templates".into());
        }
        if !(0.0..=1.0).contains(&self.footer_prob) {
            return Err("footer_prob must be in [0,1]".into());
        }
        for entry in &self.schema {
            if entry.def.min > entry.def.max {
                return Err(format!(
                    "schema for type {} has min > max",
                    self.types.name(entry.def.ty)
                ));
            }
            if let AttrSource::Vocabulary = entry.source {
                let vocab = self.types.vocabulary(entry.def.ty).len();
                if vocab < entry.def.max {
                    return Err(format!(
                        "type {} vocabulary ({}) smaller than max draw ({})",
                        self.types.name(entry.def.ty),
                        vocab,
                        entry.def.max
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts() -> TypeSystem {
        let mut t = TypeSystem::new();
        t.declare("topic");
        t.declare("venue");
        t
    }

    #[test]
    fn parse_mixes_literals_and_slots() {
        let types = ts();
        let t = GenTemplate::parse("published {topic} papers in {venue}", &types);
        assert_eq!(t.units.len(), 4);
        assert_eq!(t.units[0], GenUnit::Lit("published"));
        assert!(matches!(t.units[1], GenUnit::Attr(_)));
        assert_eq!(t.units[2], GenUnit::Lit("papers in"));
        assert!(matches!(t.units[3], GenUnit::Attr(_)));
    }

    #[test]
    fn parse_special_slots() {
        let types = ts();
        let t = GenTemplate::parse("{name} studies {*topic} {noise}", &types);
        assert_eq!(t.units[0], GenUnit::Name);
        assert!(matches!(t.units[1], GenUnit::Lit("studies")));
        assert!(matches!(t.units[2], GenUnit::AnyOfType(_)));
        assert_eq!(t.units[3], GenUnit::Noise);
    }

    #[test]
    #[should_panic(expected = "unknown type")]
    fn parse_rejects_unknown_type() {
        let types = ts();
        GenTemplate::parse("about {nonexistent}", &types);
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn parse_rejects_unclosed_brace() {
        let types = ts();
        GenTemplate::parse("about {topic", &types);
    }

    #[test]
    fn pure_literal_pattern() {
        let types = ts();
        let t = GenTemplate::parse("click here for more", &types);
        assert_eq!(t.units, vec![GenUnit::Lit("click here for more")]);
    }
}
