//! The corpus container: entities, pages, shared symbol table, tokenizer
//! and (extended) type system for one domain.

use crate::aspect::AspectId;
use crate::entity::{Entity, EntityId};
use crate::page::{Page, PageId};
use crate::types::{TypeId, TypeSystem};
use l2q_text::{Sym, SymbolTable, Tokenizer};

/// A fully generated, frozen corpus for one domain.
///
/// All queries in the evaluation "retrieve pages from this corpus only"
/// (paper Sect. VI-A). The corpus owns the domain's symbol table and
/// tokenizer so that every downstream component speaks the same `Sym`
/// language.
pub struct Corpus {
    /// Domain name (`researchers` / `cars`).
    pub domain: &'static str,
    /// Aspect names in id order (Fig. 9 column).
    pub aspect_names: Vec<&'static str>,
    /// Type system, extended with entity names and synthesized values.
    pub types: TypeSystem,
    /// The tokenizer (phrase dictionary baked in).
    pub tokenizer: Tokenizer,
    /// Interner shared by all pages.
    pub symbols: SymbolTable,
    /// All entities.
    pub entities: Vec<Entity>,
    /// All pages, grouped contiguously by entity.
    pub pages: Vec<Page>,
    /// Per-entity `(start, end)` index range into `pages`.
    page_range: Vec<(u32, u32)>,
    /// Tokenized seed query per entity.
    seed_words: Vec<Vec<Sym>>,
    /// `Sym → type` cache covering every interned symbol.
    sym_types: Vec<Option<TypeId>>,
}

impl Corpus {
    /// Assemble a corpus (used by the generator; fields must be coherent).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        domain: &'static str,
        aspect_names: Vec<&'static str>,
        types: TypeSystem,
        tokenizer: Tokenizer,
        symbols: SymbolTable,
        entities: Vec<Entity>,
        pages: Vec<Page>,
        page_range: Vec<(u32, u32)>,
        seed_words: Vec<Vec<Sym>>,
    ) -> Self {
        let sym_types = symbols
            .iter()
            .map(|(_, name)| types.type_of(name))
            .collect();
        Self {
            domain,
            aspect_names,
            types,
            tokenizer,
            symbols,
            entities,
            pages,
            page_range,
            seed_words,
            sym_types,
        }
    }

    /// Number of aspects.
    pub fn aspect_count(&self) -> usize {
        self.aspect_names.len()
    }

    /// All aspect ids.
    pub fn aspects(&self) -> impl Iterator<Item = AspectId> {
        (0..self.aspect_names.len()).map(|i| AspectId(i as u8))
    }

    /// Aspect id by (case-insensitive) name.
    pub fn aspect_by_name(&self, name: &str) -> Option<AspectId> {
        self.aspect_names
            .iter()
            .position(|n| n.eq_ignore_ascii_case(name))
            .map(|i| AspectId(i as u8))
    }

    /// Name of an aspect.
    pub fn aspect_name(&self, a: AspectId) -> &'static str {
        self.aspect_names[a.index()]
    }

    /// The pages of one entity.
    pub fn pages_of(&self, e: EntityId) -> &[Page] {
        let (s, t) = self.page_range[e.index()];
        &self.pages[s as usize..t as usize]
    }

    /// A page by id.
    pub fn page(&self, p: PageId) -> &Page {
        &self.pages[p.index()]
    }

    /// An entity by id.
    pub fn entity(&self, e: EntityId) -> &Entity {
        &self.entities[e.index()]
    }

    /// All entity ids.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> {
        (0..self.entities.len() as u32).map(EntityId)
    }

    /// Tokenized seed query of an entity.
    pub fn seed_query(&self, e: EntityId) -> &[Sym] {
        &self.seed_words[e.index()]
    }

    /// The type of an interned word, if any. O(1) via a cache for symbols
    /// present at assembly; symbols interned later fall back to a live
    /// dictionary lookup.
    pub fn type_of_sym(&self, s: Sym) -> Option<TypeId> {
        match self.sym_types.get(s.index()) {
            Some(cached) => *cached,
            None => self.types.type_of(self.symbols.resolve(s)),
        }
    }

    /// Ground-truth paragraph count per aspect across the whole corpus
    /// (the "Frequency" column of Fig. 9).
    pub fn paragraph_frequency(&self) -> Vec<usize> {
        let mut freq = vec![0usize; self.aspect_count()];
        for page in &self.pages {
            for para in &page.paragraphs {
                if let Some(a) = para.label.aspect() {
                    freq[a.index()] += 1;
                }
            }
        }
        freq
    }

    /// Total paragraphs (including background).
    pub fn paragraph_count(&self) -> usize {
        self.pages.iter().map(|p| p.paragraphs.len()).sum()
    }

    /// Ground-truth: pages of `e` relevant to `aspect`.
    pub fn truth_relevant_pages(&self, e: EntityId, aspect: AspectId) -> Vec<PageId> {
        self.pages_of(e)
            .iter()
            .filter(|p| p.truth_relevant(aspect))
            .map(|p| p.id)
            .collect()
    }
}

impl std::fmt::Debug for Corpus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Corpus")
            .field("domain", &self.domain)
            .field("entities", &self.entities.len())
            .field("pages", &self.pages.len())
            .field("symbols", &self.symbols.len())
            .finish()
    }
}
