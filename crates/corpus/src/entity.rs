//! Entities and their attributes.
//!
//! A domain "consists of a particular kind of entities, such as researchers
//! or cars". Each generated entity carries a unique name and a set of typed
//! attribute values (its own topics, venues, features, …) drawn from the
//! domain's type vocabularies. These per-entity draws are what create the
//! *entity variation* the paper's templates exist to bridge: Snir's pages
//! say `parallel`, Yu's say `data mining`, but both abstract to ⟨topic⟩.

use crate::types::TypeId;
use std::collections::HashMap;
use std::fmt;

/// Identifier of an entity within a corpus (dense, starts at 0).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

impl EntityId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EntityId({})", self.0)
    }
}

/// A generated entity: unique name plus typed attribute values.
#[derive(Clone, Debug)]
pub struct Entity {
    /// Dense id within its corpus.
    pub id: EntityId,
    /// Unique human-readable name, e.g. `marc snir` or `bmw 328i` —
    /// normalized (lower-case, space-joined) like all dictionary entries.
    pub name: String,
    /// The seed query that uniquely identifies the entity (paper: name +
    /// institute for researchers, make + model for cars).
    pub seed_query: String,
    /// Attribute values per type, normalized.
    attrs: HashMap<TypeId, Vec<String>>,
}

impl Entity {
    /// Create an entity with no attributes yet.
    pub fn new(id: EntityId, name: String, seed_query: String) -> Self {
        Self {
            id,
            name,
            seed_query,
            attrs: HashMap::new(),
        }
    }

    /// Append an attribute value of the given type.
    pub fn push_attr(&mut self, t: TypeId, value: String) {
        self.attrs.entry(t).or_default().push(value);
    }

    /// The entity's values of a type (empty slice if none).
    pub fn attr(&self, t: TypeId) -> &[String] {
        self.attrs.get(&t).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether the entity has at least one value of the type.
    pub fn has_attr(&self, t: TypeId) -> bool {
        !self.attr(t).is_empty()
    }

    /// Iterate over all `(type, values)` pairs (unspecified order).
    pub fn attrs(&self) -> impl Iterator<Item = (TypeId, &[String])> {
        self.attrs.iter().map(|(&t, v)| (t, v.as_slice()))
    }

    /// Total number of attribute values.
    pub fn attr_count(&self) -> usize {
        self.attrs.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_accumulate_per_type() {
        let mut e = Entity::new(EntityId(0), "marc snir".into(), "marc snir uiuc".into());
        let topic = TypeId(0);
        let venue = TypeId(1);
        e.push_attr(topic, "parallel computing".into());
        e.push_attr(topic, "hpc".into());
        e.push_attr(venue, "ijhpca".into());
        assert_eq!(e.attr(topic), ["parallel computing", "hpc"]);
        assert_eq!(e.attr(venue), ["ijhpca"]);
        assert!(e.attr(TypeId(9)).is_empty());
        assert!(e.has_attr(topic));
        assert!(!e.has_attr(TypeId(9)));
        assert_eq!(e.attr_count(), 3);
    }
}
