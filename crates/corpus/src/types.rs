//! Type system / knowledge base.
//!
//! Templates abstract queries by replacing words with *types* (paper
//! Def. 1): a type is a set of words, such as ⟨topic⟩ = {hpc, data mining,
//! ai, …}. The paper sources types from Freebase/Microsoft Academic Search
//! dictionaries, CoreNLP NER and regular expressions; we substitute a
//! self-contained [`TypeSystem`] combining
//!
//! 1. a **dictionary** mapping words/phrases to types (the Freebase/MAS/NER
//!    replacement — the corpus generator registers every vocabulary word it
//!    can emit), and
//! 2. **lexical recognizers** for well-formed tokens: ⟨year⟩ and
//!    ⟨phonenum⟩-style all-digit tokens (the regex replacement).
//!
//! Multi-word dictionary entries double as tokenizer phrases so that e.g.
//! `data mining` is one word unit everywhere.

use l2q_text::PhraseDict;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a type within a [`TypeSystem`] (dense, starts at 0).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u16);

impl TypeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TypeId({})", self.0)
    }
}

/// A lexical recognizer for well-formed tokens (the paper's regex channel).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LexicalRule {
    /// A four-digit token starting with 19 or 20 (e.g. `2009`).
    Year,
    /// An all-digit token with length in `min_len..=max_len` (e.g. a phone
    /// number `6581234567` or a price `24999`).
    Digits {
        /// Minimum token length (inclusive).
        min_len: usize,
        /// Maximum token length (inclusive).
        max_len: usize,
    },
}

impl LexicalRule {
    /// Whether `word` matches this rule.
    pub fn matches(&self, word: &str) -> bool {
        match *self {
            LexicalRule::Year => {
                word.len() == 4
                    && word.bytes().all(|b| b.is_ascii_digit())
                    && (word.starts_with("19") || word.starts_with("20"))
            }
            LexicalRule::Digits { min_len, max_len } => {
                !word.is_empty()
                    && word.len() >= min_len
                    && word.len() <= max_len
                    && word.bytes().all(|b| b.is_ascii_digit())
            }
        }
    }
}

/// A word → type knowledge base with dictionary and lexical channels.
#[derive(Default, Clone, Debug)]
pub struct TypeSystem {
    names: Vec<String>,
    by_name: HashMap<String, TypeId>,
    dict: HashMap<String, TypeId>,
    vocab: Vec<Vec<String>>,
    lexical: Vec<(TypeId, LexicalRule)>,
}

impl TypeSystem {
    /// Create an empty type system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a type by name, e.g. `"topic"`.
    pub fn declare(&mut self, name: &str) -> TypeId {
        if let Some(&t) = self.by_name.get(name) {
            return t;
        }
        let t = TypeId(u16::try_from(self.names.len()).expect("too many types"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), t);
        self.vocab.push(Vec::new());
        t
    }

    /// Look up a type id by name.
    pub fn get(&self, name: &str) -> Option<TypeId> {
        self.by_name.get(name).copied()
    }

    /// Name of a type.
    pub fn name(&self, t: TypeId) -> &str {
        &self.names[t.index()]
    }

    /// Number of declared types.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no types are declared.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Add a dictionary word (normalized: lower-case; multi-word phrases
    /// space-joined) to a type's vocabulary.
    ///
    /// First registration wins if a word is claimed by two types — the
    /// dictionary maps each word to exactly one type, mirroring the paper's
    /// keyword → type dictionary.
    pub fn add_word(&mut self, t: TypeId, word: &str) {
        let norm = normalize(word);
        if norm.is_empty() {
            return;
        }
        if !self.dict.contains_key(&norm) {
            self.dict.insert(norm.clone(), t);
            self.vocab[t.index()].push(norm);
        }
    }

    /// Add many words at once.
    pub fn add_words<'a, I: IntoIterator<Item = &'a str>>(&mut self, t: TypeId, words: I) {
        for w in words {
            self.add_word(t, w);
        }
    }

    /// Attach a lexical recognizer to a type. Rules are tried in
    /// registration order after the dictionary.
    pub fn add_lexical(&mut self, t: TypeId, rule: LexicalRule) {
        self.lexical.push((t, rule));
    }

    /// The type of a word (dictionary first, then lexical rules).
    pub fn type_of(&self, word: &str) -> Option<TypeId> {
        if let Some(&t) = self.dict.get(word) {
            return Some(t);
        }
        self.lexical
            .iter()
            .find(|(_, r)| r.matches(word))
            .map(|&(t, _)| t)
    }

    /// The registered vocabulary of a type (dictionary channel only).
    pub fn vocabulary(&self, t: TypeId) -> &[String] {
        &self.vocab[t.index()]
    }

    /// Total dictionary size across types.
    pub fn dict_len(&self) -> usize {
        self.dict.len()
    }

    /// Build the tokenizer phrase dictionary from all multi-word entries.
    pub fn phrase_dict(&self) -> PhraseDict {
        let mut d = PhraseDict::new();
        for word in self.dict.keys() {
            if word.contains(' ') {
                d.add(word);
            }
        }
        d
    }

    /// Iterate `(TypeId, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TypeId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (TypeId(i as u16), n.as_str()))
    }
}

/// Normalize a dictionary entry the same way the tokenizer does: lower-case,
/// alphanumeric terms, space-joined.
fn normalize(word: &str) -> String {
    let lower = word.to_lowercase();
    lower
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_is_idempotent() {
        let mut ts = TypeSystem::new();
        let a = ts.declare("topic");
        let b = ts.declare("topic");
        let c = ts.declare("venue");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.name(a), "topic");
    }

    #[test]
    fn dictionary_lookup() {
        let mut ts = TypeSystem::new();
        let topic = ts.declare("topic");
        ts.add_words(topic, ["hpc", "Data Mining", "ai"]);
        assert_eq!(ts.type_of("hpc"), Some(topic));
        assert_eq!(ts.type_of("data mining"), Some(topic));
        assert_eq!(ts.type_of("unknown"), None);
        assert_eq!(ts.vocabulary(topic).len(), 3);
    }

    #[test]
    fn first_registration_wins_on_conflict() {
        let mut ts = TypeSystem::new();
        let a = ts.declare("a");
        let b = ts.declare("b");
        ts.add_word(a, "shared");
        ts.add_word(b, "shared");
        assert_eq!(ts.type_of("shared"), Some(a));
        assert!(ts.vocabulary(b).is_empty());
    }

    #[test]
    fn year_recognizer() {
        let r = LexicalRule::Year;
        assert!(r.matches("2009"));
        assert!(r.matches("1998"));
        assert!(!r.matches("2200"));
        assert!(!r.matches("209"));
        assert!(!r.matches("20091"));
        assert!(!r.matches("200a"));
    }

    #[test]
    fn digits_recognizer() {
        let r = LexicalRule::Digits {
            min_len: 7,
            max_len: 12,
        };
        assert!(r.matches("6581234567"));
        assert!(!r.matches("123456"));
        assert!(!r.matches("65812345678901"));
        assert!(!r.matches("658123456x"));
    }

    #[test]
    fn lexical_rules_apply_after_dictionary() {
        let mut ts = TypeSystem::new();
        let year = ts.declare("year");
        let phone = ts.declare("phonenum");
        ts.add_lexical(year, LexicalRule::Year);
        ts.add_lexical(
            phone,
            LexicalRule::Digits {
                min_len: 7,
                max_len: 12,
            },
        );
        assert_eq!(ts.type_of("2009"), Some(year));
        assert_eq!(ts.type_of("6581234567"), Some(phone));
        // Dictionary overrides lexical.
        let special = ts.declare("special");
        ts.add_word(special, "2009");
        assert_eq!(ts.type_of("2009"), Some(special));
    }

    #[test]
    fn phrase_dict_contains_only_multiword_entries() {
        let mut ts = TypeSystem::new();
        let t = ts.declare("topic");
        ts.add_words(t, ["hpc", "data mining", "machine learning"]);
        let d = ts.phrase_dict();
        assert_eq!(d.len(), 2);
        assert_eq!(d.max_len(), 2);
    }

    #[test]
    fn normalization_matches_tokenizer() {
        let mut ts = TypeSystem::new();
        let t = ts.declare("venue");
        ts.add_word(t, "  Car-and-Driver ");
        assert_eq!(ts.type_of("car and driver"), Some(t));
    }
}
