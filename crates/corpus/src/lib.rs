//! # l2q-corpus — type system and synthetic web corpora for L2Q
//!
//! The paper evaluates on frozen Web corpora for two domains (996 DBLP
//! researchers, 143 consumer cars; ~50 pages per entity) plus a type
//! dictionary assembled from Freebase, Microsoft Academic Search, CoreNLP
//! NER and regular expressions. This crate substitutes a self-contained,
//! deterministic equivalent (see DESIGN.md §2 for the substitution
//! rationale):
//!
//! * [`types::TypeSystem`] — word → type knowledge base with dictionary and
//!   lexical channels; multi-word entries double as tokenizer phrases.
//! * [`spec::DomainSpec`] — declarative domain recipes; the two built-ins
//!   live in [`domains`].
//! * [`generator::generate`] — executes a recipe into a frozen [`Corpus`]:
//!   unique entities with typed attributes (the source of *entity
//!   variation*), pages of labelled paragraphs with the paper's skewed
//!   per-aspect frequencies, everything a pure function of the seed.
//!
//! ```
//! use l2q_corpus::{generate, researchers_domain, CorpusConfig};
//! let corpus = generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap();
//! assert_eq!(corpus.aspect_count(), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aspect;
pub mod config;
pub mod corpus;
pub mod domains;
pub mod entity;
pub mod generator;
pub mod page;
pub mod paragraphs;
pub mod spec;
pub mod types;

pub use aspect::{AspectId, ParagraphLabel};
pub use config::CorpusConfig;
pub use corpus::Corpus;
pub use domains::{cars_domain, researchers_domain};
pub use entity::{Entity, EntityId};
pub use generator::{generate, GenError};
pub use page::{Page, PageId, Paragraph};
pub use paragraphs::{explode_to_paragraphs, ParagraphOrigin};
pub use types::{LexicalRule, TypeId, TypeSystem};
