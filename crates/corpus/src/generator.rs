//! The corpus generator: executes a [`DomainSpec`] under a [`CorpusConfig`]
//! to produce a frozen, deterministic [`Corpus`].
//!
//! Generation happens in two passes:
//!
//! 1. **Entities.** Unique names are minted from the domain's name pool and
//!    registered in the type system (so entity names are typed words, e.g.
//!    ⟨person⟩/⟨model⟩). Each entity draws its attribute values per the
//!    schema — vocabulary draws without replacement, plus synthesized
//!    values (emails, urls, phone numbers, years) registered back into the
//!    dictionary.
//! 2. **Pages.** Per entity, each page gets a *focus* label (an aspect or
//!    background). The first `min_focus_pages_per_aspect × n_aspects` pages
//!    cover the aspects round-robin (so every entity–aspect pair has
//!    recall signal); the rest draw their focus from the weighted aspect
//!    mixture, reproducing the paper's skewed per-aspect frequencies.
//!    Every page opens with an identity paragraph (name + identifying
//!    attributes, so the seed query works), followed by paragraphs that
//!    follow the focus with probability `focus_fidelity` and otherwise mix
//!    in other aspects/background.

use crate::aspect::{AspectId, ParagraphLabel};
use crate::config::CorpusConfig;
use crate::corpus::Corpus;
use crate::entity::{Entity, EntityId};
use crate::page::{Page, PageId, Paragraph};
use crate::spec::{AttrSource, DomainSpec, GenTemplate, GenUnit};
use crate::types::TypeSystem;
use l2q_text::{SymbolTable, Tokenizer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Errors from corpus generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// Config failed validation.
    BadConfig(String),
    /// Spec failed validation.
    BadSpec(String),
    /// The name pool cannot mint enough unique entity names.
    NamePoolExhausted {
        /// Requested entity count.
        requested: usize,
        /// Available unique combinations.
        available: usize,
    },
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::BadConfig(m) => write!(f, "invalid corpus config: {m}"),
            GenError::BadSpec(m) => write!(f, "invalid domain spec: {m}"),
            GenError::NamePoolExhausted {
                requested,
                available,
            } => write!(
                f,
                "name pool exhausted: requested {requested} entities, only {available} unique names"
            ),
        }
    }
}

impl std::error::Error for GenError {}

/// Generate a corpus from a domain spec and config.
pub fn generate(spec: &DomainSpec, config: &CorpusConfig) -> Result<Corpus, GenError> {
    config.validate().map_err(GenError::BadConfig)?;
    spec.validate().map_err(GenError::BadSpec)?;

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut types = spec.types.clone();

    let entities = mint_entities(spec, config, &mut types, &mut rng)?;

    // The tokenizer's phrase dictionary must include entity names and
    // synthesized values, so build it after entity minting.
    let tokenizer = Tokenizer::new(types.phrase_dict());
    let mut symbols = SymbolTable::new();

    let mut pages = Vec::with_capacity(entities.len() * config.pages_per_entity);
    let mut page_range = Vec::with_capacity(entities.len());
    let mut seed_words = Vec::with_capacity(entities.len());

    let focus_plan = FocusPlan::new(spec, config);

    for entity in &entities {
        let start = pages.len() as u32;
        for page_idx in 0..config.pages_per_entity {
            let focus = focus_plan.focus_for(page_idx, &mut rng);
            let page = generate_page(
                PageId(pages.len() as u32),
                entity,
                focus,
                spec,
                &types,
                config,
                &tokenizer,
                &mut symbols,
                &mut rng,
            );
            pages.push(page);
        }
        page_range.push((start, pages.len() as u32));
        seed_words.push(tokenizer.tokenize(&entity.seed_query, &mut symbols));
    }

    Ok(Corpus::assemble(
        spec.name,
        spec.aspects.iter().map(|a| a.name).collect(),
        types,
        tokenizer,
        symbols,
        entities,
        pages,
        page_range,
        seed_words,
    ))
}

/// Mint unique entities with attributes, registering names and synthesized
/// values into the type system.
fn mint_entities(
    spec: &DomainSpec,
    config: &CorpusConfig,
    types: &mut TypeSystem,
    rng: &mut StdRng,
) -> Result<Vec<Entity>, GenError> {
    let first = &spec.name_parts.first;
    let second = &spec.name_parts.second;
    let available = first.len() * second.len();
    if config.n_entities > available {
        return Err(GenError::NamePoolExhausted {
            requested: config.n_entities,
            available,
        });
    }

    // Shuffle the (first, second) cross product and take the first N.
    let mut combos: Vec<(usize, usize)> = (0..available)
        .map(|k| (k / second.len(), k % second.len()))
        .collect();
    combos.shuffle(rng);
    combos.truncate(config.n_entities);

    let mut entities = Vec::with_capacity(config.n_entities);
    for (idx, (i, j)) in combos.into_iter().enumerate() {
        let name = format!("{} {}", first[i], second[j]);
        let name_tokens: Vec<&str> = name.split(' ').collect();
        let mut entity = Entity::new(EntityId(idx as u32), name.clone(), String::new());

        for entry in &spec.schema {
            let k = rng.gen_range(entry.def.min..=entry.def.max);
            match &entry.source {
                AttrSource::Vocabulary => {
                    let vocab = types.vocabulary(entry.def.ty).to_vec();
                    let picks = sample_distinct(&vocab, k, rng);
                    for v in picks {
                        entity.push_attr(entry.def.ty, v);
                    }
                }
                AttrSource::Synth(pattern) => {
                    for _ in 0..k {
                        let v = synth_value(pattern, &name_tokens, rng);
                        types.add_word(entry.def.ty, &v);
                        entity.push_attr(entry.def.ty, v);
                    }
                }
            }
        }

        // Register the entity name as a typed word (⟨person⟩/⟨model⟩).
        types.add_word(spec.name_parts.name_type, &name);

        // Seed query: name, optionally plus an identifying attribute
        // (paper: "marc snir uiuc" = name + institute).
        entity.seed_query = match spec.name_parts.seed_extra {
            Some(t) if entity.has_attr(t) => {
                format!("{} {}", name, entity.attr(t)[0])
            }
            _ => name,
        };

        entities.push(entity);
    }
    Ok(entities)
}

/// Sample `k` distinct values from `vocab` (uniform, without replacement).
fn sample_distinct(vocab: &[String], k: usize, rng: &mut StdRng) -> Vec<String> {
    let k = k.min(vocab.len());
    let mut idx: Vec<usize> = (0..vocab.len()).collect();
    idx.shuffle(rng);
    idx.truncate(k);
    idx.into_iter().map(|i| vocab[i].clone()).collect()
}

/// Expand a synth pattern: `#` → random digit, `{name0}`/`{name1}` → name
/// tokens (clamped to the last token if out of range).
fn synth_value(pattern: &str, name_tokens: &[&str], rng: &mut StdRng) -> String {
    let mut out = String::with_capacity(pattern.len());
    let mut rest = pattern;
    while !rest.is_empty() {
        if let Some(tail) = rest.strip_prefix('#') {
            out.push(char::from(b'0' + rng.gen_range(0..10u8)));
            rest = tail;
        } else if rest.starts_with('{') {
            let close = rest.find('}').expect("unclosed brace in synth pattern");
            let slot = &rest[1..close];
            let i: usize = slot
                .strip_prefix("name")
                .and_then(|n| n.parse().ok())
                .expect("synth slot must be {nameN}");
            let tok = name_tokens
                .get(i)
                .or_else(|| name_tokens.last())
                .expect("entity name has no tokens");
            out.push_str(tok);
            rest = &rest[close + 1..];
        } else {
            let ch = rest.chars().next().unwrap();
            out.push(ch);
            rest = &rest[ch.len_utf8()..];
        }
    }
    out
}

/// Focus assignment: round-robin guaranteed coverage, then weighted.
struct FocusPlan {
    n_aspects: usize,
    guaranteed: usize,
    /// Cumulative weights over aspects + background (background last).
    cumulative: Vec<f64>,
}

impl FocusPlan {
    fn new(spec: &DomainSpec, config: &CorpusConfig) -> Self {
        let mut cumulative = Vec::with_capacity(spec.aspects.len() + 1);
        let mut acc = 0.0;
        for a in &spec.aspects {
            acc += a.weight;
            cumulative.push(acc);
        }
        acc += spec.background_weight;
        cumulative.push(acc);
        Self {
            n_aspects: spec.aspects.len(),
            guaranteed: config.min_focus_pages_per_aspect * spec.aspects.len(),
            cumulative,
        }
    }

    /// Label for page `page_idx` of an entity.
    fn focus_for(&self, page_idx: usize, rng: &mut StdRng) -> ParagraphLabel {
        if page_idx < self.guaranteed {
            return ParagraphLabel::Aspect(AspectId((page_idx % self.n_aspects) as u8));
        }
        self.sample(rng)
    }

    /// Weighted draw over aspects + background.
    fn sample(&self, rng: &mut StdRng) -> ParagraphLabel {
        let total = *self.cumulative.last().expect("non-empty cumulative");
        let x: f64 = rng.gen_range(0.0..total);
        let pos = self.cumulative.partition_point(|&c| c <= x);
        if pos >= self.n_aspects {
            ParagraphLabel::Background
        } else {
            ParagraphLabel::Aspect(AspectId(pos as u8))
        }
    }
}

/// Generate one page for an entity.
#[allow(clippy::too_many_arguments)]
fn generate_page(
    id: PageId,
    entity: &Entity,
    focus: ParagraphLabel,
    spec: &DomainSpec,
    types: &TypeSystem,
    config: &CorpusConfig,
    tokenizer: &Tokenizer,
    symbols: &mut SymbolTable,
    rng: &mut StdRng,
) -> Page {
    let (lo, hi) = config.paragraphs_per_page;
    let n_paras = rng.gen_range(lo..=hi);
    let plan = FocusPlan::new(spec, config);

    let mut paragraphs = Vec::with_capacity(n_paras + 1);

    // Identity paragraph first.
    let ident = spec
        .identity
        .choose(rng)
        .expect("spec validated: identity non-empty");
    paragraphs.push(fill_paragraph(
        ident,
        ParagraphLabel::Background,
        entity,
        spec,
        types,
        tokenizer,
        symbols,
        rng,
    ));

    // Site chrome: most pages carry a footer/menu paragraph.
    if !spec.footers.is_empty() && rng.gen_bool(spec.footer_prob) {
        let footer = spec.footers.choose(rng).expect("non-empty footers");
        paragraphs.push(fill_paragraph(
            footer,
            ParagraphLabel::Background,
            entity,
            spec,
            types,
            tokenizer,
            symbols,
            rng,
        ));
    }

    for para_idx in 0..n_paras {
        // The first content paragraph always follows the page focus, so a
        // page focused on aspect A is guaranteed relevant to A (this is the
        // invariant the round-robin coverage plan relies on). The rest
        // follow the focus with probability `focus_fidelity`.
        let label = if para_idx == 0 || rng.gen_bool(config.focus_fidelity) {
            focus
        } else {
            plan.sample(rng)
        };
        let template = match label {
            ParagraphLabel::Aspect(a) => spec.aspects[a.index()]
                .templates
                .choose(rng)
                .expect("spec validated: aspect templates non-empty"),
            ParagraphLabel::Background => spec
                .background
                .choose(rng)
                .expect("spec has background templates"),
        };
        paragraphs.push(fill_paragraph(
            template, label, entity, spec, types, tokenizer, symbols, rng,
        ));
    }

    Page::new(id, entity.id, paragraphs)
}

/// Instantiate a generation template for an entity.
#[allow(clippy::too_many_arguments)]
fn fill_paragraph(
    template: &GenTemplate,
    label: ParagraphLabel,
    entity: &Entity,
    spec: &DomainSpec,
    types: &TypeSystem,
    tokenizer: &Tokenizer,
    symbols: &mut SymbolTable,
    rng: &mut StdRng,
) -> Paragraph {
    let mut text = String::new();
    // Avoid re-emitting the same attribute value twice in one paragraph
    // ("edge computing and edge computing" is not text anyone writes).
    let mut last_attr: Option<(crate::types::TypeId, String)> = None;
    for unit in &template.units {
        let piece: Option<String> = match unit {
            GenUnit::Lit(s) => Some((*s).to_owned()),
            GenUnit::Name => Some(entity.name.clone()),
            GenUnit::Noise => spec.noise.choose(rng).map(|s| (*s).to_owned()),
            GenUnit::Attr(t) => {
                let vals = entity.attr(*t);
                let pick = if vals.is_empty() {
                    // Fall back to the global vocabulary if the entity has
                    // no value of this type.
                    types.vocabulary(*t).choose(rng).cloned()
                } else if vals.len() > 1 {
                    // Resample once if we just emitted this exact value.
                    let first = vals.choose(rng).cloned();
                    match (&last_attr, first) {
                        (Some((lt, lv)), Some(v)) if *lt == *t && *lv == v => {
                            let other: Vec<&String> = vals.iter().filter(|x| **x != v).collect();
                            other.choose(rng).map(|s| (*s).clone()).or(Some(v))
                        }
                        (_, first) => first,
                    }
                } else {
                    vals.first().cloned()
                };
                if let Some(ref v) = pick {
                    last_attr = Some((*t, v.clone()));
                }
                pick
            }
            GenUnit::AnyOfType(t) => types.vocabulary(*t).choose(rng).cloned(),
        };
        if let Some(p) = piece {
            if !text.is_empty() {
                text.push(' ');
            }
            text.push_str(&p);
        }
    }
    Paragraph {
        label,
        words: tokenizer.tokenize(&text, symbols),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::{cars_domain, researchers_domain};

    #[test]
    fn generation_is_deterministic() {
        let spec = researchers_domain();
        let cfg = CorpusConfig::tiny();
        let a = generate(&spec, &cfg).unwrap();
        let b = generate(&spec, &cfg).unwrap();
        assert_eq!(a.entities.len(), b.entities.len());
        for (ea, eb) in a.entities.iter().zip(&b.entities) {
            assert_eq!(ea.name, eb.name);
            assert_eq!(ea.seed_query, eb.seed_query);
        }
        assert_eq!(a.pages.len(), b.pages.len());
        for (pa, pb) in a.pages.iter().zip(&b.pages) {
            assert_eq!(pa.paragraphs.len(), pb.paragraphs.len());
            for (qa, qb) in pa.paragraphs.iter().zip(&pb.paragraphs) {
                assert_eq!(qa.label, qb.label);
                assert_eq!(qa.words, qb.words);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let spec = researchers_domain();
        let a = generate(&spec, &CorpusConfig::tiny()).unwrap();
        let b = generate(&spec, &CorpusConfig::tiny().seeded(99)).unwrap();
        let names_a: Vec<_> = a.entities.iter().map(|e| &e.name).collect();
        let names_b: Vec<_> = b.entities.iter().map(|e| &e.name).collect();
        assert_ne!(names_a, names_b);
    }

    #[test]
    fn entity_names_are_unique_and_typed() {
        let spec = researchers_domain();
        let c = generate(&spec, &CorpusConfig::with_entities(50)).unwrap();
        let mut names: Vec<_> = c.entities.iter().map(|e| e.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 50);
        let person = c.types.get("person").unwrap();
        for e in &c.entities {
            assert_eq!(c.types.type_of(&e.name), Some(person));
        }
    }

    #[test]
    fn every_entity_aspect_pair_has_relevant_pages() {
        let spec = researchers_domain();
        let c = generate(&spec, &CorpusConfig::tiny()).unwrap();
        for e in c.entity_ids() {
            for a in c.aspects() {
                assert!(
                    !c.truth_relevant_pages(e, a).is_empty(),
                    "entity {e:?} aspect {a:?} has no relevant pages"
                );
            }
        }
    }

    #[test]
    fn page_counts_match_config() {
        let spec = cars_domain();
        let cfg = CorpusConfig::tiny();
        let c = generate(&spec, &cfg).unwrap();
        assert_eq!(c.entities.len(), cfg.n_entities);
        assert_eq!(c.pages.len(), cfg.n_entities * cfg.pages_per_entity);
        for e in c.entity_ids() {
            assert_eq!(c.pages_of(e).len(), cfg.pages_per_entity);
            for p in c.pages_of(e) {
                assert_eq!(p.entity, e);
                assert!(!p.is_empty());
            }
        }
    }

    #[test]
    fn aspect_frequencies_are_skewed_like_fig9() {
        let spec = researchers_domain();
        let c = generate(&spec, &CorpusConfig::with_entities(30)).unwrap();
        let freq = c.paragraph_frequency();
        let research = c.aspect_by_name("RESEARCH").unwrap();
        let employment = c.aspect_by_name("EMPLOYMENT").unwrap();
        assert!(
            freq[research.index()] > 3 * freq[employment.index()],
            "RESEARCH ({}) must dominate EMPLOYMENT ({})",
            freq[research.index()],
            freq[employment.index()]
        );
    }

    #[test]
    fn seed_query_tokens_resolve() {
        let spec = researchers_domain();
        let c = generate(&spec, &CorpusConfig::tiny()).unwrap();
        for e in c.entity_ids() {
            let seed = c.seed_query(e);
            assert!(!seed.is_empty());
        }
    }

    #[test]
    fn synth_values_are_registered_in_dictionary() {
        let spec = researchers_domain();
        let c = generate(&spec, &CorpusConfig::tiny()).unwrap();
        let email = c.types.get("email").unwrap();
        for e in &c.entities {
            for v in e.attr(email) {
                assert_eq!(c.types.type_of(v), Some(email), "email {v} not in dict");
            }
        }
    }

    #[test]
    fn name_pool_exhaustion_is_an_error() {
        let spec = researchers_domain();
        let cfg = CorpusConfig::with_entities(1_000_000);
        match generate(&spec, &cfg) {
            Err(GenError::NamePoolExhausted { .. }) => {}
            other => panic!("expected NamePoolExhausted, got {other:?}"),
        }
    }

    #[test]
    fn synth_pattern_expansion() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = synth_value("20##", &["marc", "snir"], &mut rng);
        assert_eq!(v.len(), 4);
        assert!(v.starts_with("20"));
        let v = synth_value("{name0}###mail", &["marc", "snir"], &mut rng);
        assert!(v.starts_with("marc"));
        assert!(v.ends_with("mail"));
        let v = synth_value("www{name0}{name1}page", &["marc", "snir"], &mut rng);
        assert_eq!(v, "wwwmarcsnirpage");
        // Out-of-range name index clamps to the last token.
        let v = synth_value("{name5}", &["solo"], &mut rng);
        assert_eq!(v, "solo");
    }

    #[test]
    fn cars_corpus_generates() {
        let spec = cars_domain();
        let c = generate(&spec, &CorpusConfig::tiny()).unwrap();
        assert_eq!(c.domain, "cars");
        assert_eq!(c.aspect_count(), 7);
        assert!(c.paragraph_count() > 0);
    }
}
