//! Entity aspects.
//!
//! An aspect is the target of focused harvesting: RESEARCH of researchers,
//! SAFETY of cars, and so on (paper Fig. 9 lists the fourteen aspects the
//! evaluation covers, seven per domain). Within a domain, aspects are
//! identified by a dense [`AspectId`].

use std::fmt;

/// Identifier of an aspect within a domain (dense, starts at 0).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AspectId(pub u8);

impl AspectId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for AspectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AspectId({})", self.0)
    }
}

/// The ground-truth label of a paragraph: a tested aspect, or background
/// text belonging to none of them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ParagraphLabel {
    /// The paragraph is about the given aspect.
    Aspect(AspectId),
    /// Generic/identity/noise text not about any tested aspect.
    Background,
}

impl ParagraphLabel {
    /// The aspect, if any.
    pub fn aspect(self) -> Option<AspectId> {
        match self {
            ParagraphLabel::Aspect(a) => Some(a),
            ParagraphLabel::Background => None,
        }
    }

    /// Whether this paragraph is relevant to `aspect`.
    pub fn is_relevant_to(self, aspect: AspectId) -> bool {
        self.aspect() == Some(aspect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relevance_matches_only_same_aspect() {
        let l = ParagraphLabel::Aspect(AspectId(2));
        assert!(l.is_relevant_to(AspectId(2)));
        assert!(!l.is_relevant_to(AspectId(1)));
        assert!(!ParagraphLabel::Background.is_relevant_to(AspectId(2)));
    }

    #[test]
    fn aspect_accessor() {
        assert_eq!(
            ParagraphLabel::Aspect(AspectId(3)).aspect(),
            Some(AspectId(3))
        );
        assert_eq!(ParagraphLabel::Background.aspect(), None);
    }
}
