//! The **researchers** domain (paper: 996 prolific DBLP authors).
//!
//! Seven aspects as in Fig. 9 — BIOGRAPHY, PRESENTATION, AWARD, RESEARCH,
//! EDUCATION, EMPLOYMENT, CONTACT — with paragraph-frequency weights set to
//! the paper's reported corpus ratios (RESEARCH dominates at 107K of ~147K
//! aspect paragraphs). Types mirror the paper's Freebase/MAS dictionary
//! (⟨topic⟩, ⟨venue⟩/⟨journal⟩, ⟨institute⟩, ⟨award⟩, …), its NER channel
//! (⟨person⟩, ⟨location⟩) and its regex channel (⟨year⟩, ⟨phonenum⟩,
//! ⟨email⟩, ⟨url⟩).

use crate::spec::{
    AspectSpec, AttrDef, AttrSource, DomainSpec, GenTemplate, NameParts, SchemaEntry,
};
use crate::types::{LexicalRule, TypeSystem};

const TOPICS: &[&str] = &[
    "parallel computing",
    "high performance computing",
    "hpc",
    "data mining",
    "machine learning",
    "artificial intelligence",
    "databases",
    "query optimization",
    "information retrieval",
    "natural language processing",
    "computer vision",
    "robotics",
    "distributed systems",
    "operating systems",
    "computer networks",
    "network security",
    "cryptography",
    "software engineering",
    "programming languages",
    "compilers",
    "computer architecture",
    "graph mining",
    "social networks",
    "recommender systems",
    "deep learning",
    "reinforcement learning",
    "knowledge graphs",
    "semantic web",
    "data integration",
    "stream processing",
    "cloud computing",
    "edge computing",
    "bioinformatics",
    "computational biology",
    "algorithm design",
    "computational complexity",
    "approximation algorithms",
    "randomized algorithms",
    "formal verification",
    "model checking",
    "human computer interaction",
    "visualization",
    "data privacy",
    "differential privacy",
    "federated learning",
    "speech recognition",
    "text mining",
    "web search",
];

const VENUES: &[&str] = &[
    "tkde",
    "sigmod",
    "vldb",
    "icde",
    "kdd",
    "www conference",
    "sigir",
    "cikm",
    "wsdm",
    "jmlr",
    "neurips",
    "icml",
    "aaai",
    "ijcai",
    "acl",
    "emnlp",
    "naacl",
    "cvpr",
    "iccv",
    "eccv",
    "sosp",
    "osdi",
    "nsdi",
    "sigcomm",
    "podc",
    "popl",
    "pldi",
    "oopsla",
    "icse",
    "fse",
    "stoc",
    "focs",
    "soda",
    "ijhpca",
    "tods",
    "tois",
];

const INSTITUTES: &[&str] = &[
    "uiuc",
    "stanford",
    "mit",
    "cmu",
    "berkeley",
    "cornell",
    "princeton",
    "georgia tech",
    "university of washington",
    "university of michigan",
    "ut austin",
    "ucla",
    "ucsd",
    "caltech",
    "harvard",
    "yale",
    "columbia",
    "nyu",
    "eth zurich",
    "epfl",
    "oxford",
    "cambridge",
    "tsinghua",
    "peking university",
    "nus",
    "ntu",
    "university of toronto",
    "mcgill",
    "max planck institute",
    "inria",
    "ibm research",
    "microsoft research",
    "google research",
    "bell labs",
    "yahoo labs",
    "baidu",
    "alibaba",
    "amazon research",
    "facebook research",
    "nec labs",
];

const AWARDS: &[&str] = &[
    "acm fellow",
    "ieee fellow",
    "turing award",
    "best paper award",
    "test of time award",
    "sigmod contributions award",
    "nsf career award",
    "sloan fellowship",
    "guggenheim fellowship",
    "distinguished scientist award",
    "young investigator award",
    "humboldt research award",
    "dissertation award",
    "innovation award",
    "technical achievement award",
    "influential paper award",
    "rising star award",
    "distinguished alumni award",
];

const DEGREES: &[&str] = &["phd", "masters degree", "bachelors degree", "postdoc"];

const LOCATIONS: &[&str] = &[
    "urbana",
    "palo alto",
    "boston",
    "pittsburgh",
    "seattle",
    "new york",
    "san francisco",
    "chicago",
    "austin",
    "atlanta",
    "los angeles",
    "san diego",
    "zurich",
    "lausanne",
    "london",
    "paris",
    "beijing",
    "shanghai",
    "singapore",
    "tokyo",
    "toronto",
    "montreal",
    "sydney",
    "munich",
];

const FIRST_NAMES: &[&str] = &[
    "marc", "philip", "andrew", "yuan", "vincent", "kevin", "james", "maria", "wei", "anna",
    "david", "elena", "rajeev", "priya", "hiroshi", "yuki", "carlos", "sofia", "ahmed", "fatima",
    "lars", "ingrid", "pavel", "olga", "jean", "claire", "marco", "giulia", "tomas", "eva",
    "sanjay", "deepa", "victor", "nina", "oscar", "lucia", "felix", "clara", "ivan", "tanya",
];

const LAST_NAMES: &[&str] = &[
    "snir",
    "yu",
    "ng",
    "fang",
    "zheng",
    "chang",
    "miller",
    "garcia",
    "chen",
    "kowalski",
    "smithson",
    "petrova",
    "gupta",
    "raman",
    "tanaka",
    "sato",
    "mendez",
    "rossi",
    "hassan",
    "ali",
    "eriksson",
    "berg",
    "novak",
    "ivanova",
    "dupont",
    "moreau",
    "bianchi",
    "ferrari",
    "horak",
    "svoboda",
    "mehta",
    "iyer",
    "castillo",
    "volkova",
    "lindgren",
    "fernandez",
    "weber",
    "schmidt",
    "dimitrov",
    "sokolova",
];

const NOISE: &[&str] = &[
    "information",
    "page",
    "website",
    "welcome",
    "overview",
    "list",
    "update",
    "news",
    "events",
    "links",
    "resources",
    "archive",
    "misc",
    "general",
    "various",
    "content",
    "section",
    "item",
    "menu",
    "home",
    "search",
    "login",
    "member",
    "public",
    "online",
    "digital",
    "official",
    "portal",
    "community",
    "network",
];

/// Build the researchers [`DomainSpec`].
pub fn researchers_domain() -> DomainSpec {
    let mut ts = TypeSystem::new();
    let topic = ts.declare("topic");
    let venue = ts.declare("venue");
    let institute = ts.declare("institute");
    let award = ts.declare("award");
    let degree = ts.declare("degree");
    let person = ts.declare("person");
    let location = ts.declare("location");
    let year = ts.declare("year");
    let email = ts.declare("email");
    let url = ts.declare("url");
    let phonenum = ts.declare("phonenum");

    ts.add_words(topic, TOPICS.iter().copied());
    ts.add_words(venue, VENUES.iter().copied());
    ts.add_words(institute, INSTITUTES.iter().copied());
    ts.add_words(award, AWARDS.iter().copied());
    ts.add_words(degree, DEGREES.iter().copied());
    ts.add_words(location, LOCATIONS.iter().copied());
    ts.add_lexical(year, LexicalRule::Year);
    ts.add_lexical(
        phonenum,
        LexicalRule::Digits {
            min_len: 7,
            max_len: 12,
        },
    );

    let t = |p: &'static str, ts: &TypeSystem| GenTemplate::parse(p, ts);

    let aspects = vec![
        AspectSpec {
            name: "BIOGRAPHY",
            weight: 8.0,
            templates: vec![
                t("he was born in {location} in {year}", &ts),
                t(
                    "he grew up in {location} and later moved to {location}",
                    &ts,
                ),
                t(
                    "a short biography {name} lives in {location} with his family",
                    &ts,
                ),
                t("he is a native of {location}", &ts),
                t("his early life in {location} shaped his career", &ts),
                t("biography {name} spent his childhood in {location}", &ts),
                t("see the full {noise} details below", &ts),
            ],
        },
        AspectSpec {
            name: "PRESENTATION",
            weight: 10.0,
            templates: vec![
                t("he gave a keynote talk at {venue} in {year}", &ts),
                t("invited presentation on {topic} at {venue}", &ts),
                t("his slides from the {venue} tutorial are available", &ts),
                t("he presented the paper at {venue} in {location}", &ts),
                t("keynote speech on {topic} delivered at {institute}", &ts),
                t("his invited talk at {venue} covered {topic}", &ts),
                t("{name} spoke about {topic} at the {venue} panel", &ts),
                t("see the full {noise} details below", &ts),
            ],
        },
        AspectSpec {
            name: "AWARD",
            weight: 11.0,
            templates: vec![
                t("he received the {award} in {year}", &ts),
                t("winner of the {award} for contributions to {topic}", &ts),
                t("he was named {award} in {year}", &ts),
                t(
                    "the {award} recognizes his distinguished work on {topic}",
                    &ts,
                ),
                t("proud recipient of the {award} award", &ts),
                t("{name} was honored with the {award}", &ts),
                t("his {award} citation mentions {topic}", &ts),
                t("see the full {noise} details below", &ts),
            ],
        },
        AspectSpec {
            name: "RESEARCH",
            weight: 107.0,
            templates: vec![
                t("he conducts research on {topic} and {topic} systems", &ts),
                t("published many papers on {topic} research in {venue}", &ts),
                t("his research on {topic} algorithms is widely cited", &ts),
                t("the {topic} group studies {topic} and {topic}", &ts),
                t(
                    "a recent {venue} paper on {topic} received much attention",
                    &ts,
                ),
                t("his research interests include {topic} and {topic}", &ts),
                t("he works on {topic} with applications to {topic}", &ts),
                t(
                    "many {topic} papers appear in his {venue} publications",
                    &ts,
                ),
                t("he studied the complexity of {topic} problems", &ts),
                t("{name} leads a research agenda in {topic}", &ts),
                t("his survey covered {topic} and {topic}", &ts),
                t("early ideas in {topic} shaped the field", &ts),
                t("see the full {noise} details below", &ts),
            ],
        },
        AspectSpec {
            name: "EDUCATION",
            weight: 11.0,
            templates: vec![
                t("he obtained his {degree} from {institute} in {year}", &ts),
                t("he studied at {institute} where he earned a {degree}", &ts),
                t("{degree} in computer science from {institute}", &ts),
                t(
                    "he completed his {degree} thesis on {topic} at {institute}",
                    &ts,
                ),
                t("graduated from {institute} with a {degree} in {year}", &ts),
                t(
                    "his doctoral education at {institute} focused on {topic}",
                    &ts,
                ),
                t("{name} holds a {degree} from {institute}", &ts),
                t("see the full {noise} details below", &ts),
            ],
        },
        AspectSpec {
            name: "EMPLOYMENT",
            weight: 3.0,
            templates: vec![
                t(
                    "he was a senior manager at {institute} before joining {institute}",
                    &ts,
                ),
                t("he joined the faculty of {institute} in {year}", &ts),
                t("previously he worked at {institute} as a researcher", &ts),
                t("he is currently a professor at {institute}", &ts),
                t("{name} has been employed by {institute} since {year}", &ts),
                t("he held positions at {institute} and {institute}", &ts),
                t("see the full {noise} details below", &ts),
            ],
        },
        AspectSpec {
            name: "CONTACT",
            weight: 7.0,
            templates: vec![
                t("contact him at {email}", &ts),
                t("visit his homepage {url}", &ts),
                t("office phone {phonenum}", &ts),
                t("reach him at {email} or call {phonenum}", &ts),
                t("his office address is {institute} in {location}", &ts),
                t("email {email} phone {phonenum}", &ts),
                t("see the full {noise} details below", &ts),
            ],
        },
    ];

    // Identity mentions: every page names the entity, but the *phrasing*
    // varies — on the real Web "homepage of X" appears on one page, not
    // on all fifty, so no single boilerplate phrase may blanket the
    // entity's pages (that would hand recall-perfect templates to the
    // domain phase for free).
    let identity = vec![
        t("{name} is a researcher at {institute}", &ts),
        t("homepage of {name}", &ts),
        t("{name} {institute} faculty profile", &ts),
        t("{name} {year}", &ts),
        t("about {name}", &ts),
        t("{name} at {institute}", &ts),
        t("pages mentioning {name}", &ts),
        t("{name} online", &ts),
    ];

    // Site chrome carried by most pages: aspect words in irrelevant
    // contexts — the reason generic queries are imprecise on the real Web.
    let footers = vec![
        t("home research publications awards contact biography", &ts),
        t(
            "menu education employment presentations awards {noise}",
            &ts,
        ),
        t("research teaching service contact {noise}", &ts),
        t("publications talks awards biography contact", &ts),
        t("news people research education about {noise}", &ts),
        t("faculty research students employment contact us", &ts),
        t("award research education contact profile links", &ts),
        t("talk slides paper award phd thesis {noise}", &ts),
        t("distinguished lecture series keynote archive {noise}", &ts),
    ];

    let background = vec![
        t("this page was last updated in {year}", &ts),
        t("readers say this {noise} section is helpful", &ts),
        t("see the full {noise} details below", &ts),
        t("click here for more information {noise}", &ts),
        t("copyright {year} all rights reserved", &ts),
        t("home news people publications {noise}", &ts),
        t("see also the profile of {*person}", &ts),
        t("{noise} {noise} department site map", &ts),
        t("subscribe to the newsletter for updates {noise}", &ts),
        t("related links {noise} {noise}", &ts),
        t("he enjoys hiking and photography in {location}", &ts),
        // Aspect-signature words recycled in mundane contexts, as real
        // pages do — keeps single generic words from being perfect
        // aspect predictors.
        t("call for papers {venue} {year}", &ts),
        t("how to reach the {institute} campus", &ts),
        t("update your interests in your member profile", &ts),
        t("site sections include {noise} and {noise}", &ts),
        t(
            "the community recognizes contributions of many members",
            &ts,
        ),
        t("his early work is archived online", &ts),
        t("work life balance tips {noise}", &ts),
        t("his father was employed at {institute} for years", &ts),
        t(
            "slides and talk recordings may be covered by copyright",
            &ts,
        ),
        t("winner announced at the {noise} raffle", &ts),
        t("graduated volume controls {noise}", &ts),
        t("presentation of the website has been refreshed", &ts),
    ];

    let schema = vec![
        SchemaEntry {
            def: AttrDef {
                ty: topic,
                min: 2,
                max: 4,
            },
            source: AttrSource::Vocabulary,
        },
        SchemaEntry {
            def: AttrDef {
                ty: venue,
                min: 2,
                max: 4,
            },
            source: AttrSource::Vocabulary,
        },
        SchemaEntry {
            def: AttrDef {
                ty: institute,
                min: 2,
                max: 3,
            },
            source: AttrSource::Vocabulary,
        },
        SchemaEntry {
            def: AttrDef {
                ty: award,
                min: 1,
                max: 3,
            },
            source: AttrSource::Vocabulary,
        },
        SchemaEntry {
            def: AttrDef {
                ty: degree,
                min: 2,
                max: 2,
            },
            source: AttrSource::Vocabulary,
        },
        SchemaEntry {
            def: AttrDef {
                ty: location,
                min: 1,
                max: 2,
            },
            source: AttrSource::Vocabulary,
        },
        SchemaEntry {
            def: AttrDef {
                ty: year,
                min: 2,
                max: 3,
            },
            source: AttrSource::Synth("20##"),
        },
        SchemaEntry {
            def: AttrDef {
                ty: email,
                min: 1,
                max: 1,
            },
            source: AttrSource::Synth("{name0}###mail"),
        },
        SchemaEntry {
            def: AttrDef {
                ty: url,
                min: 1,
                max: 1,
            },
            source: AttrSource::Synth("www{name0}{name1}page"),
        },
        SchemaEntry {
            def: AttrDef {
                ty: phonenum,
                min: 1,
                max: 1,
            },
            source: AttrSource::Synth("217#######"),
        },
    ];

    DomainSpec {
        name: "researchers",
        aspects,
        schema,
        background,
        identity,
        footers,
        footer_prob: 0.9,
        noise: NOISE.to_vec(),
        background_weight: 40.0,
        name_parts: NameParts {
            first: FIRST_NAMES.to_vec(),
            second: LAST_NAMES.to_vec(),
            name_type: person,
            seed_extra: Some(institute),
        },
        types: ts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validates() {
        let spec = researchers_domain();
        spec.validate().expect("researchers spec must validate");
    }

    #[test]
    fn has_seven_aspects_matching_fig9() {
        let spec = researchers_domain();
        let names: Vec<_> = spec.aspects.iter().map(|a| a.name).collect();
        assert_eq!(
            names,
            [
                "BIOGRAPHY",
                "PRESENTATION",
                "AWARD",
                "RESEARCH",
                "EDUCATION",
                "EMPLOYMENT",
                "CONTACT"
            ]
        );
    }

    #[test]
    fn research_is_the_dominant_aspect() {
        let spec = researchers_domain();
        let research = spec.aspects.iter().find(|a| a.name == "RESEARCH").unwrap();
        for a in &spec.aspects {
            if a.name != "RESEARCH" {
                assert!(research.weight > 5.0 * a.weight);
            }
        }
    }

    #[test]
    fn multiword_vocab_entries_become_phrases() {
        let spec = researchers_domain();
        let d = spec.types.phrase_dict();
        assert!(d.len() > 30, "expected many phrases, got {}", d.len());
    }

    #[test]
    fn aspect_lookup_by_name() {
        let spec = researchers_domain();
        assert!(spec.aspect_by_name("research").is_some());
        assert!(spec.aspect_by_name("RESEARCH").is_some());
        assert!(spec.aspect_by_name("nope").is_none());
    }

    #[test]
    fn name_pool_supports_paper_scale() {
        let spec = researchers_domain();
        let combos = spec.name_parts.first.len() * spec.name_parts.second.len();
        assert!(combos >= 996, "need ≥996 unique names, have {combos}");
    }
}
