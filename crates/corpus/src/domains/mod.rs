//! Built-in domain recipes mirroring the paper's two evaluation domains:
//! prolific DBLP **researchers** and 2009 consumer **cars** (Sect. VI-A).

pub mod cars;
pub mod researchers;

pub use cars::cars_domain;
pub use researchers::researchers_domain;
