//! The **cars** domain (paper: 143 consumer car models released in 2009).
//!
//! Seven aspects as in Fig. 9 — VERDICT, INTERIOR, EXTERIOR, PRICE,
//! RELIABILITY, SAFETY, DRIVING — with weights matching the paper's
//! paragraph-frequency skew (DRIVING dominates at 16K of ~47K aspect
//! paragraphs). Types cover review-site vocabulary: ⟨interior feature⟩,
//! ⟨exterior feature⟩, ⟨driving term⟩, ⟨safety feature⟩, ⟨safety org⟩,
//! ⟨magazine⟩, ⟨dealer⟩, ⟨price term⟩, ⟨reliability term⟩, ⟨trim⟩, and the
//! lexical ⟨year⟩/⟨money⟩ channels.

use crate::spec::{
    AspectSpec, AttrDef, AttrSource, DomainSpec, GenTemplate, NameParts, SchemaEntry,
};
use crate::types::{LexicalRule, TypeSystem};

const INTERIOR_FEATURES: &[&str] = &[
    "leather seats",
    "heated seats",
    "touchscreen",
    "navigation system",
    "legroom",
    "cargo space",
    "infotainment",
    "sunroof",
    "dashboard trim",
    "climate control",
    "rear camera",
    "bluetooth",
    "premium audio",
    "keyless entry",
    "power windows",
    "ambient lighting",
    "seat memory",
    "steering wheel controls",
    "usb ports",
    "wireless charging",
    "head up display",
    "panoramic roof",
    "third row seating",
    "ventilated seats",
    "soft touch materials",
    "bose speakers",
    "digital cluster",
    "heated steering wheel",
    "lumbar support",
    "split folding seats",
    "center console",
    "cup holders",
    "cloth upholstery",
    "alcantara inserts",
    "rear vents",
    "cargo organizer",
    "illuminated sills",
    "acoustic glass",
    "massage seats",
];

const EXTERIOR_FEATURES: &[&str] = &[
    "alloy wheels",
    "led headlights",
    "fog lights",
    "chrome grille",
    "rear spoiler",
    "roof rails",
    "body kit",
    "paint finish",
    "sport bumper",
    "power mirrors",
    "tinted windows",
    "daytime running lights",
    "hatch design",
    "sculpted lines",
    "aggressive stance",
    "two tone paint",
    "rear diffuser",
    "panoramic glass",
    "flush door handles",
    "wheel arches",
    "matte finish",
    "shark fin antenna",
    "power liftgate",
    "front splitter",
    "side skirts",
    "quad exhaust",
    "panoramic windshield",
    "badge delete",
    "gloss black trim",
    "tow hitch",
];

const DRIVING_TERMS: &[&str] = &[
    "horsepower",
    "torque",
    "acceleration",
    "handling",
    "mpg",
    "fuel economy",
    "suspension",
    "steering feel",
    "braking",
    "transmission",
    "turbocharged engine",
    "all wheel drive",
    "ride quality",
    "road noise",
    "cornering",
    "throttle response",
    "gear shifts",
    "downshifts",
    "sport mode",
    "eco mode",
    "zero to sixty",
    "top speed",
    "engine note",
    "chassis balance",
    "drivetrain",
    "traction",
    "highway cruising",
    "city driving",
    "stopping distance",
    "paddle shifters",
    "launch control",
    "rev matching",
    "brake fade",
    "body roll",
    "understeer",
    "oversteer",
    "low end grunt",
    "passing power",
    "towing capacity",
    "ground clearance",
    "hill descent control",
    "terrain modes",
    "regenerative braking",
];

const SAFETY_FEATURES: &[&str] = &[
    "airbags",
    "lane assist",
    "blind spot monitor",
    "crash test",
    "stability control",
    "abs brakes",
    "collision warning",
    "automatic emergency braking",
    "backup sensors",
    "child seat anchors",
    "tire pressure monitoring",
    "crumple zones",
    "rollover protection",
    "pedestrian detection",
    "adaptive headlights",
    "seatbelt pretensioners",
    "traction control",
    "driver attention monitor",
    "cross traffic alert",
    "five star rating",
    "side impact beams",
    "knee airbags",
    "automatic high beams",
    "road sign recognition",
    "fatigue warning",
    "post collision braking",
    "isofix mounts",
    "whiplash protection",
];

const SAFETY_ORGS: &[&str] = &["nhtsa", "iihs", "euro ncap"];

const MAGAZINES: &[&str] = &[
    "edmunds",
    "motor trend",
    "car and driver",
    "kelley blue book",
    "autoblog",
    "top gear",
    "road and track",
    "autoweek",
    "jd power",
    "consumer reports",
    "autotrader",
    "cargurus",
    "the drive",
    "jalopnik",
];

const DEALERS: &[&str] = &[
    "downtown motors",
    "city auto mall",
    "premier dealership",
    "valley imports",
    "metro auto group",
    "coastal cars",
    "summit automotive",
    "heritage motors",
    "liberty auto",
    "riverside dealership",
    "northside motors",
    "sunset auto plaza",
    "lakeshore cars",
    "capital auto center",
];

const PRICE_TERMS: &[&str] = &[
    "msrp",
    "invoice price",
    "financing",
    "lease deal",
    "rebate",
    "dealer discount",
    "apr",
    "down payment",
    "monthly payment",
    "trade in value",
    "resale value",
    "sticker price",
    "destination fee",
    "incentives",
];

const RELIABILITY_TERMS: &[&str] = &[
    "warranty",
    "recall",
    "defects",
    "maintenance costs",
    "repair history",
    "transmission problems",
    "engine issues",
    "build quality",
    "long term ownership",
    "powertrain warranty",
    "service intervals",
    "dependability",
    "common complaints",
    "owner reported issues",
];

const TRIMS: &[&str] = &[
    "sedan",
    "coupe",
    "hatchback",
    "suv",
    "sport package",
    "premium package",
    "base trim",
    "limited edition",
    "touring trim",
    "performance trim",
];

const MAKES: &[&str] = &[
    "bmw",
    "audi",
    "toyota",
    "honda",
    "ford",
    "chevrolet",
    "mercedes",
    "volkswagen",
    "nissan",
    "hyundai",
    "kia",
    "mazda",
    "subaru",
    "volvo",
    "lexus",
    "acura",
    "infiniti",
    "porsche",
    "jaguar",
    "jeep",
    "dodge",
    "chrysler",
    "buick",
    "cadillac",
    "lincoln",
    "mitsubishi",
    "suzuki",
    "fiat",
];

const MODELS: &[&str] = &[
    "accord",
    "camry",
    "civic",
    "corolla",
    "328i",
    "a4",
    "c300",
    "golf",
    "jetta",
    "altima",
    "sentra",
    "elantra",
    "sonata",
    "soul",
    "cx5",
    "mazda3",
    "outback",
    "forester",
    "xc60",
    "s60",
    "rx350",
    "es350",
    "mdx",
    "tlx",
    "q50",
    "cayenne",
    "wrangler",
    "charger",
    "challenger",
    "malibu",
    "impala",
    "escape",
    "focus",
    "fusion",
    "explorer",
    "tucson",
    "sportage",
    "optima",
];

const NOISE: &[&str] = &[
    "photos",
    "gallery",
    "listing",
    "inventory",
    "compare",
    "specs",
    "details",
    "overview",
    "options",
    "colors",
    "models",
    "vehicles",
    "automotive",
    "online",
    "deals",
    "offers",
    "local",
    "nearby",
    "available",
    "certified",
    "used",
    "new",
    "shop",
    "browse",
    "research",
    "guide",
    "tools",
    "calculator",
    "alerts",
    "saved",
];

/// Build the cars [`DomainSpec`].
pub fn cars_domain() -> DomainSpec {
    let mut ts = TypeSystem::new();
    let interior = ts.declare("interior feature");
    let exterior = ts.declare("exterior feature");
    let driving = ts.declare("driving term");
    let safety = ts.declare("safety feature");
    let safety_org = ts.declare("safety org");
    let magazine = ts.declare("magazine");
    let dealer = ts.declare("dealer");
    let price_term = ts.declare("price term");
    let reliability = ts.declare("reliability term");
    let trim = ts.declare("trim");
    let model = ts.declare("model");
    let year = ts.declare("year");
    let money = ts.declare("money");

    ts.add_words(interior, INTERIOR_FEATURES.iter().copied());
    ts.add_words(exterior, EXTERIOR_FEATURES.iter().copied());
    ts.add_words(driving, DRIVING_TERMS.iter().copied());
    ts.add_words(safety, SAFETY_FEATURES.iter().copied());
    ts.add_words(safety_org, SAFETY_ORGS.iter().copied());
    ts.add_words(magazine, MAGAZINES.iter().copied());
    ts.add_words(dealer, DEALERS.iter().copied());
    ts.add_words(price_term, PRICE_TERMS.iter().copied());
    ts.add_words(reliability, RELIABILITY_TERMS.iter().copied());
    ts.add_words(trim, TRIMS.iter().copied());
    ts.add_lexical(year, LexicalRule::Year);
    ts.add_lexical(
        money,
        LexicalRule::Digits {
            min_len: 5,
            max_len: 6,
        },
    );

    let t = |p: &'static str, ts: &TypeSystem| GenTemplate::parse(p, ts);

    let aspects = vec![
        AspectSpec {
            name: "VERDICT",
            weight: 7.0,
            templates: vec![
                t(
                    "the {magazine} review gives the {name} a favorable verdict",
                    &ts,
                ),
                t("overall rating from {magazine} places it above rivals", &ts),
                t("pros and cons summarized in the {magazine} road test", &ts),
                t("our verdict the {name} is a strong buy", &ts),
                t("{magazine} editors ranked it best in class", &ts),
                t("the final verdict praises its {driving term}", &ts),
                t("comparison test verdict published by {magazine}", &ts),
                t("see the full {noise} details below", &ts),
            ],
        },
        AspectSpec {
            name: "INTERIOR",
            weight: 7.0,
            templates: vec![
                t(
                    "the cabin offers {interior feature} and {interior feature}",
                    &ts,
                ),
                t("interior highlights include {interior feature}", &ts),
                t("the {interior feature} impressed reviewers", &ts),
                t(
                    "rear passengers enjoy {interior feature} and {interior feature}",
                    &ts,
                ),
                t(
                    "upgraded interior with {interior feature} comes standard",
                    &ts,
                ),
                t("the dashboard layout features {interior feature}", &ts),
                t(
                    "{name} interior quality praised for {interior feature}",
                    &ts,
                ),
                t("see the full {noise} details below", &ts),
            ],
        },
        AspectSpec {
            name: "EXTERIOR",
            weight: 5.0,
            templates: vec![
                t(
                    "the exterior styling features {exterior feature} and {exterior feature}",
                    &ts,
                ),
                t("its {exterior feature} gives an aggressive look", &ts),
                t("new {exterior feature} distinguish this model year", &ts),
                t("exterior design praised for {exterior feature}", &ts),
                t("the {name} exterior sports {exterior feature}", &ts),
                t("optional {exterior feature} available on higher trims", &ts),
                t("see the full {noise} details below", &ts),
            ],
        },
        AspectSpec {
            name: "PRICE",
            weight: 8.0,
            templates: vec![
                t("the {price term} starts at {money} dollars", &ts),
                t("current {price term} offers from {dealer}", &ts),
                t("negotiate below {price term} at {dealer}", &ts),
                t("pricing guide {money} for the {trim}", &ts),
                t("the {name} {price term} compares well with rivals", &ts),
                t("{dealer} advertises a {price term} of {money}", &ts),
                t("lease and financing {price term} details inside", &ts),
                t("see the full {noise} details below", &ts),
            ],
        },
        AspectSpec {
            name: "RELIABILITY",
            weight: 2.0,
            templates: vec![
                t("owners report {reliability term} after {year}", &ts),
                t("the {reliability term} rating is above average", &ts),
                t(
                    "{magazine} reliability survey covers {reliability term}",
                    &ts,
                ),
                t("known {reliability term} affect early builds", &ts),
                t("low {reliability term} make ownership painless", &ts),
                t("reliability data shows few {reliability term}", &ts),
                t("see the full {noise} details below", &ts),
            ],
        },
        AspectSpec {
            name: "SAFETY",
            weight: 2.0,
            templates: vec![
                t("{safety org} crash test awarded five stars", &ts),
                t(
                    "safety features include {safety feature} and {safety feature}",
                    &ts,
                ),
                t("standard {safety feature} across all trims", &ts),
                t("the {safety org} rating reflects its {safety feature}", &ts),
                t("top safety pick thanks to {safety feature}", &ts),
                t("{name} earned the {safety org} safety award", &ts),
                t("advanced {safety feature} protects occupants", &ts),
                t("see the full {noise} details below", &ts),
            ],
        },
        AspectSpec {
            name: "DRIVING",
            weight: 16.0,
            templates: vec![
                t(
                    "the engine delivers strong {driving term} and {driving term}",
                    &ts,
                ),
                t("on the road the {driving term} feels composed", &ts),
                t("our test drive revealed impressive {driving term}", &ts),
                t("its {driving term} rivals sportier cars", &ts),
                t(
                    "{driving term} and {driving term} define the driving experience",
                    &ts,
                ),
                t("the {trim} adds sharper {driving term}", &ts),
                t("highway {driving term} is quiet and stable", &ts),
                t("{name} driving dynamics praised for {driving term}", &ts),
                t("see the full {noise} details below", &ts),
            ],
        },
    ];

    // Identity mentions: varied phrasing so no boilerplate blankets the
    // entity's pages (see the researchers domain for rationale).
    let identity = vec![
        t("{name} {trim} official page", &ts),
        t("the {year} {name} overview", &ts),
        t("{name} specs photos and information", &ts),
        t("{name} {year}", &ts),
        t("about the {name}", &ts),
        t("{name} for sale near you", &ts),
        t("shopping for a {name}", &ts),
        t("{name} owners club", &ts),
    ];

    // Site chrome carried by most pages: aspect words in irrelevant
    // contexts — the reason generic queries are imprecise on the real Web.
    let footers = vec![
        t(
            "overview price interior exterior safety driving reliability",
            &ts,
        ),
        t(
            "driving safety price interior overview driving safety deals",
            &ts,
        ),
        t("menu reviews pricing safety specs photos {noise}", &ts),
        t("shop by price safety rating driving range {noise}", &ts),
        t("reviews ratings prices compare {noise}", &ts),
        t("specs safety reliability pricing gallery interior", &ts),
        t("review rating verdict price mpg compare {noise}", &ts),
        t("exterior interior handling warranty recall lookup", &ts),
    ];

    let background = vec![
        t("this listing was updated in {year}", &ts),
        t("shoppers say this {noise} section is helpful", &ts),
        t("see the full {noise} details below", &ts),
        t("browse inventory at {dealer}", &ts),
        t("photo gallery {noise} {noise}", &ts),
        t("sign up for price alerts {noise}", &ts),
        t("compare similar vehicles {noise}", &ts),
        t("dealer locator and hours {noise}", &ts),
        t("copyright {year} all rights reserved", &ts),
        // Aspect-signature words recycled in mundane contexts (see the
        // researchers domain for rationale).
        t("compare rivals and similar {noise}", &ts),
        t("owners forum and community {noise}", &ts),
        t("editors picks of the month {noise}", &ts),
        t("most praised listings near you {noise}", &ts),
        t("our test of the website search {noise}", &ts),
        t("impressed with our service let us know", &ts),
        t("negotiate smarter with these tips {noise}", &ts),
        t("standard shipping on accessories {noise}", &ts),
        t("report a problem with this listing", &ts),
        t("composed of certified {noise} listings", &ts),
    ];

    let schema = vec![
        SchemaEntry {
            def: AttrDef {
                ty: trim,
                min: 1,
                max: 2,
            },
            source: AttrSource::Vocabulary,
        },
        SchemaEntry {
            def: AttrDef {
                ty: interior,
                min: 3,
                max: 5,
            },
            source: AttrSource::Vocabulary,
        },
        SchemaEntry {
            def: AttrDef {
                ty: exterior,
                min: 2,
                max: 4,
            },
            source: AttrSource::Vocabulary,
        },
        SchemaEntry {
            def: AttrDef {
                ty: driving,
                min: 3,
                max: 5,
            },
            source: AttrSource::Vocabulary,
        },
        SchemaEntry {
            def: AttrDef {
                ty: safety,
                min: 2,
                max: 4,
            },
            source: AttrSource::Vocabulary,
        },
        SchemaEntry {
            def: AttrDef {
                ty: safety_org,
                min: 1,
                max: 2,
            },
            source: AttrSource::Vocabulary,
        },
        SchemaEntry {
            def: AttrDef {
                ty: magazine,
                min: 2,
                max: 3,
            },
            source: AttrSource::Vocabulary,
        },
        SchemaEntry {
            def: AttrDef {
                ty: dealer,
                min: 1,
                max: 2,
            },
            source: AttrSource::Vocabulary,
        },
        SchemaEntry {
            def: AttrDef {
                ty: price_term,
                min: 2,
                max: 4,
            },
            source: AttrSource::Vocabulary,
        },
        SchemaEntry {
            def: AttrDef {
                ty: reliability,
                min: 2,
                max: 4,
            },
            source: AttrSource::Vocabulary,
        },
        SchemaEntry {
            def: AttrDef {
                ty: year,
                min: 1,
                max: 2,
            },
            source: AttrSource::Synth("200#"),
        },
        SchemaEntry {
            def: AttrDef {
                ty: money,
                min: 1,
                max: 2,
            },
            source: AttrSource::Synth("2####"),
        },
    ];

    DomainSpec {
        name: "cars",
        aspects,
        schema,
        background,
        identity,
        footers,
        footer_prob: 0.7,
        noise: NOISE.to_vec(),
        background_weight: 13.0,
        name_parts: NameParts {
            first: MAKES.to_vec(),
            second: MODELS.to_vec(),
            name_type: model,
            seed_extra: None,
        },
        types: ts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validates() {
        cars_domain().validate().expect("cars spec must validate");
    }

    #[test]
    fn has_seven_aspects_matching_fig9() {
        let spec = cars_domain();
        let names: Vec<_> = spec.aspects.iter().map(|a| a.name).collect();
        assert_eq!(
            names,
            [
                "VERDICT",
                "INTERIOR",
                "EXTERIOR",
                "PRICE",
                "RELIABILITY",
                "SAFETY",
                "DRIVING"
            ]
        );
    }

    #[test]
    fn driving_is_the_dominant_aspect() {
        let spec = cars_domain();
        let driving = spec.aspects.iter().find(|a| a.name == "DRIVING").unwrap();
        for a in &spec.aspects {
            if a.name != "DRIVING" {
                assert!(driving.weight >= 2.0 * a.weight);
            }
        }
    }

    #[test]
    fn name_pool_supports_paper_scale() {
        let spec = cars_domain();
        let combos = spec.name_parts.first.len() * spec.name_parts.second.len();
        assert!(combos >= 143, "need ≥143 unique names, have {combos}");
    }

    #[test]
    fn money_and_year_lexical_channels_are_disjoint() {
        let spec = cars_domain();
        let year = spec.types.get("year").unwrap();
        let money = spec.types.get("money").unwrap();
        assert_eq!(spec.types.type_of("2009"), Some(year));
        assert_eq!(spec.types.type_of("24999"), Some(money));
    }
}
