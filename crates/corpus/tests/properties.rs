//! Property-based tests for corpus generation invariants.

use l2q_corpus::{cars_domain, generate, researchers_domain, CorpusConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seed yields a structurally valid corpus: correct entity/page
    /// counts, non-empty pages, unique names, every entity–aspect pair
    /// covered, seed queries resolvable.
    #[test]
    fn any_seed_yields_valid_corpus(seed in 0u64..10_000) {
        let cfg = CorpusConfig {
            n_entities: 10,
            pages_per_entity: 14,
            seed,
            ..CorpusConfig::tiny()
        };
        for spec in [researchers_domain(), cars_domain()] {
            let c = generate(&spec, &cfg).unwrap();
            prop_assert_eq!(c.entities.len(), cfg.n_entities);
            prop_assert_eq!(c.pages.len(), cfg.n_entities * cfg.pages_per_entity);

            let mut names: Vec<_> = c.entities.iter().map(|e| e.name.clone()).collect();
            names.sort();
            names.dedup();
            prop_assert_eq!(names.len(), cfg.n_entities, "duplicate entity names");

            for e in c.entity_ids() {
                prop_assert!(!c.seed_query(e).is_empty());
                for page in c.pages_of(e) {
                    prop_assert!(!page.is_empty());
                    prop_assert_eq!(page.entity, e);
                }
                for a in c.aspects() {
                    prop_assert!(
                        !c.truth_relevant_pages(e, a).is_empty(),
                        "uncovered entity-aspect pair"
                    );
                }
            }
        }
    }

    /// Paragraph frequencies keep the paper's skew for any seed: the
    /// dominant aspect (RESEARCH / DRIVING) has the highest count. The
    /// corpus must be large enough that the weight gap (DRIVING is 2× the
    /// next car aspect) dominates sampling noise.
    #[test]
    fn dominant_aspect_is_stable(seed in 0u64..10_000) {
        let cfg = CorpusConfig {
            n_entities: 24,
            pages_per_entity: 20,
            seed,
            ..CorpusConfig::tiny()
        };
        for (spec, dominant) in [
            (researchers_domain(), "RESEARCH"),
            (cars_domain(), "DRIVING"),
        ] {
            let c = generate(&spec, &cfg).unwrap();
            let freq = c.paragraph_frequency();
            let dom = c.aspect_by_name(dominant).unwrap();
            let max = freq.iter().copied().max().unwrap();
            prop_assert_eq!(freq[dom.index()], max, "{} not dominant", dominant);
        }
    }

    /// Every word the generator emits that belongs to a type vocabulary is
    /// recognized by the (extended) type system.
    #[test]
    fn typed_words_resolve_in_pages(seed in 0u64..1_000) {
        let cfg = CorpusConfig {
            n_entities: 6,
            pages_per_entity: 8,
            seed,
            ..CorpusConfig::tiny()
        };
        let c = generate(&researchers_domain(), &cfg).unwrap();
        // Sample: every entity's topics appear somewhere in its pages and
        // are typed.
        let topic = c.types.get("topic").unwrap();
        for e in &c.entities {
            for v in e.attr(topic) {
                prop_assert_eq!(c.types.type_of(v), Some(topic));
            }
        }
    }
}
