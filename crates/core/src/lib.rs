//! # l2q-core — Learning to Query
//!
//! The paper's primary contribution: utility inference for queries over a
//! page–query–template reinforcement graph, made **domain-aware** through
//! templates learned from peer entities (Sect. IV) and **context-aware**
//! through collective utilities over the fired-query context (Sect. V),
//! driving the iterative harvest loop of Fig. 1.
//!
//! Typical use:
//!
//! ```
//! use l2q_corpus::{generate, researchers_domain, CorpusConfig, EntityId};
//! use l2q_retrieval::SearchEngine;
//! use l2q_aspect::RelevanceOracle;
//! use l2q_core::{learn_domain, Harvester, L2qConfig, L2qSelector};
//!
//! let corpus = std::sync::Arc::new(generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap());
//! let engine = SearchEngine::with_defaults(corpus.clone());
//! let oracle = RelevanceOracle::from_truth(&corpus);
//! let cfg = L2qConfig::default();
//!
//! // Domain phase: learn template utilities from peer entities, once.
//! let domain_entities: Vec<EntityId> = corpus.entity_ids().take(4).collect();
//! let domain = learn_domain(&corpus, &domain_entities, &oracle, &cfg);
//!
//! // Entity phase: harvest a target entity's aspect.
//! let harvester = Harvester {
//!     corpus: &corpus, engine: &engine, oracle: &oracle,
//!     domain: Some(&domain), cfg,
//! };
//! let aspect = corpus.aspect_by_name("RESEARCH").unwrap();
//! let mut selector = L2qSelector::l2qbal();
//! let record = harvester.run(EntityId(6), aspect, &mut selector);
//! assert!(!record.gathered.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidates;
pub mod checkpoint;
pub mod config;
pub mod context;
pub mod domain_phase;
pub mod entity_phase;
pub mod fxhash;
pub mod harvester;
pub mod portable;
pub mod query;
pub mod selector;
pub mod template;

pub use candidates::{
    page_queries, pages_queries, CandidateConfig, IncrementalCandidates, StopwordCache,
};
pub use checkpoint::{
    f64_from_hex, f64_to_hex, PortableCollective, PortableHarvestState, PortableIteration,
    CHECKPOINT_VERSION,
};
pub use config::L2qConfig;
pub use context::CollectiveState;
pub use domain_phase::{learn_domain, AspectDomainData, DomainModel, UtilityPair};
pub use entity_phase::{ContextWalks, EntityPhase, EntityPhaseState};
pub use harvester::{
    HarvestRecord, HarvestState, Harvester, IterationSnapshot, StepOutcome, StopReason,
};
pub use portable::{ImportError, ImportStats, PortableDomainModel, PortableUnit};
pub use query::Query;
pub use selector::{L2qSelector, QuerySelector, SelectionInput, Strategy};
pub use template::{templates_of, Template, TemplateMode, Unit};
