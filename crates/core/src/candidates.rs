//! Candidate query enumeration.
//!
//! "To enumerate candidate queries from a page … we applied a sliding
//! window of ℓ words over the page for each ℓ ∈ {1, 2, …, L}" with L = 3
//! (paper Sect. VI-A). Degenerate all-stopword n-grams are pruned — they
//! carry no retrieval signal. In the entity phase, candidates additionally
//! include frequent domain queries ("we restrict to queries that occur
//! with at least 50 domain entities"), which is handled by the domain
//! phase's [`crate::domain_phase::DomainModel`].

use crate::query::Query;
use l2q_corpus::{Corpus, Page};
use l2q_text::{is_stopword, ngrams, Sym};
use std::collections::{HashMap, HashSet};

/// Candidate enumeration configuration.
#[derive(Clone, Copy, Debug)]
pub struct CandidateConfig {
    /// Maximum query length L (paper default 3).
    pub max_len: usize,
    /// Minimum number of distinct domain entities a domain query must
    /// occur with to become an entity-phase candidate. The paper uses 50
    /// of 498 domain entities (~10%); we default to a scale-relative 10%.
    pub min_entity_support_fraction: f64,
    /// Hard cap on how many frequent domain queries join the entity-phase
    /// candidate pool (most supported first).
    pub max_domain_queries: usize,
}

impl Default for CandidateConfig {
    fn default() -> Self {
        Self {
            max_len: 3,
            min_entity_support_fraction: 0.10,
            max_domain_queries: 2000,
        }
    }
}

/// Memoized per-symbol stopword test (string lookups done once per symbol).
#[derive(Default, Debug)]
pub struct StopwordCache {
    map: HashMap<Sym, bool>,
}

impl StopwordCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `w` is a stopword in `corpus`'s symbol table.
    pub fn is_stop(&mut self, corpus: &Corpus, w: Sym) -> bool {
        *self
            .map
            .entry(w)
            .or_insert_with(|| is_stopword(corpus.symbols.resolve(w)))
    }

    /// Whether every word of the slice is a stopword (empty ⇒ true).
    pub fn all_stop(&mut self, corpus: &Corpus, words: &[Sym]) -> bool {
        words.iter().all(|&w| self.is_stop(corpus, w))
    }
}

/// Enumerate the distinct candidate queries of one page (all-stopword
/// n-grams pruned). Order of first occurrence.
pub fn page_queries(
    corpus: &Corpus,
    page: &Page,
    max_len: usize,
    stops: &mut StopwordCache,
) -> Vec<Query> {
    let mut seen: HashSet<Query> = HashSet::new();
    let mut out = Vec::new();
    for para in &page.paragraphs {
        for gram in ngrams(&para.words, max_len) {
            if stops.all_stop(corpus, gram) {
                continue;
            }
            let q = Query::new(gram);
            if seen.insert(q.clone()) {
                out.push(q);
            }
        }
    }
    out
}

/// Enumerate distinct candidates across several pages, in first-occurrence
/// order (deterministic given page order).
pub fn pages_queries<'a, I>(
    corpus: &Corpus,
    pages: I,
    max_len: usize,
    stops: &mut StopwordCache,
) -> Vec<Query>
where
    I: IntoIterator<Item = &'a Page>,
{
    let mut seen: HashSet<Query> = HashSet::new();
    let mut out = Vec::new();
    for page in pages {
        for q in page_queries(corpus, page, max_len, stops) {
            if seen.insert(q.clone()) {
                out.push(q);
            }
        }
    }
    out
}

/// Cross-step candidate enumerator: because [`pages_queries`] dedupes in
/// first-occurrence order over pages in order, enumerating only the pages
/// added since the last step and appending their unseen queries yields
/// exactly the same list as re-enumerating everything — without re-scanning
/// the pages already processed.
///
/// Only valid while the page list grows by appending (the harvest loop's
/// invariant); call [`IncrementalCandidates::reset`] if that ever breaks.
#[derive(Default, Debug)]
pub struct IncrementalCandidates {
    seen: HashSet<Query>,
    ordered: Vec<Query>,
    pages_done: usize,
}

impl IncrementalCandidates {
    /// An empty enumerator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold the pages beyond the already-processed prefix into the
    /// candidate list. `pages` must extend the previously passed list by
    /// appending; a shorter list resets the enumerator.
    pub fn update<'a, I>(
        &mut self,
        corpus: &Corpus,
        pages: I,
        max_len: usize,
        stops: &mut StopwordCache,
    ) where
        I: IntoIterator<Item = &'a Page>,
        I::IntoIter: ExactSizeIterator,
    {
        let iter = pages.into_iter();
        if iter.len() < self.pages_done {
            self.reset();
        }
        let skip = self.pages_done;
        self.pages_done = iter.len();
        for page in iter.skip(skip) {
            for q in page_queries(corpus, page, max_len, stops) {
                if self.seen.insert(q.clone()) {
                    self.ordered.push(q);
                }
            }
        }
    }

    /// All distinct candidates so far, in first-occurrence order —
    /// identical to [`pages_queries`] over the full page list.
    pub fn queries(&self) -> &[Query] {
        &self.ordered
    }

    /// Forget everything (next [`IncrementalCandidates::update`] starts over).
    pub fn reset(&mut self) {
        self.seen.clear();
        self.ordered.clear();
        self.pages_done = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2q_corpus::{generate, researchers_domain, CorpusConfig, EntityId};

    fn corpus() -> Corpus {
        generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap()
    }

    #[test]
    fn page_queries_are_distinct_and_bounded_in_length() {
        let c = corpus();
        let mut stops = StopwordCache::new();
        let page = &c.pages_of(EntityId(0))[0];
        let qs = page_queries(&c, page, 3, &mut stops);
        assert!(!qs.is_empty());
        let set: HashSet<_> = qs.iter().cloned().collect();
        assert_eq!(set.len(), qs.len(), "queries must be distinct");
        for q in &qs {
            assert!(!q.is_empty() && q.len() <= 3);
        }
    }

    #[test]
    fn all_stopword_ngrams_are_pruned() {
        let c = corpus();
        let mut stops = StopwordCache::new();
        for page in c.pages.iter().take(20) {
            for q in page_queries(&c, page, 3, &mut stops) {
                assert!(
                    !q.words().iter().all(|&w| is_stopword(c.symbols.resolve(w))),
                    "all-stopword query {} survived",
                    q.render(&c.symbols)
                );
            }
        }
    }

    #[test]
    fn multi_page_enumeration_dedupes_across_pages() {
        let c = corpus();
        let mut stops = StopwordCache::new();
        let pages = c.pages_of(EntityId(0));
        let all = pages_queries(&c, pages.iter(), 3, &mut stops);
        let set: HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len());
        // Union must be at least as large as any single page's set.
        let single = page_queries(&c, &pages[0], 3, &mut stops);
        assert!(all.len() >= single.len());
    }

    #[test]
    fn enumeration_is_deterministic() {
        let c = corpus();
        let pages = c.pages_of(EntityId(1));
        let a = pages_queries(&c, pages.iter(), 3, &mut StopwordCache::new());
        let b = pages_queries(&c, pages.iter(), 3, &mut StopwordCache::new());
        assert_eq!(a, b);
    }

    #[test]
    fn incremental_enumeration_matches_batch_exactly() {
        let c = corpus();
        let pages = c.pages_of(EntityId(2));
        let mut inc = IncrementalCandidates::new();
        let mut stops = StopwordCache::new();
        for k in 1..=pages.len() {
            inc.update(&c, pages[..k].iter(), 3, &mut stops);
            let batch = pages_queries(&c, pages[..k].iter(), 3, &mut StopwordCache::new());
            assert_eq!(inc.queries(), &batch[..], "diverged at prefix {k}");
        }
    }

    #[test]
    fn shrinking_page_list_resets_the_enumerator() {
        let c = corpus();
        let pages = c.pages_of(EntityId(2));
        assert!(pages.len() >= 2);
        let mut inc = IncrementalCandidates::new();
        let mut stops = StopwordCache::new();
        inc.update(&c, pages.iter(), 3, &mut stops);
        inc.update(&c, pages[..1].iter(), 3, &mut stops);
        let batch = pages_queries(&c, pages[..1].iter(), 3, &mut StopwordCache::new());
        assert_eq!(inc.queries(), &batch[..]);
    }

    #[test]
    fn phrases_count_as_single_words() {
        let c = corpus();
        let mut stops = StopwordCache::new();
        // Any multi-word typed value (e.g. "data mining") must appear as a
        // unigram query if it occurs in some page.
        let mut found_phrase_unigram = false;
        for page in c.pages.iter().take(50) {
            for q in page_queries(&c, page, 1, &mut stops) {
                if q.len() == 1 && c.symbols.resolve(q.words()[0]).contains(' ') {
                    found_phrase_unigram = true;
                }
            }
        }
        assert!(
            found_phrase_unigram,
            "no merged phrase appeared as a unigram"
        );
    }
}
