//! Query values.
//!
//! A query is a short word sequence of length ≤ L = 3 (paper Def. 1), but
//! the data model "views … each query as a bag of words": keyword
//! retrieval is order-insensitive, so `hpc research` and `research hpc`
//! are the *same* query. [`Query`] therefore canonicalizes to a sorted
//! word multiset — sliding-window n-grams that are permutations of each
//! other collapse into one candidate, and a fired query can never be
//! re-fired as a permutation of itself.

use l2q_text::{Sym, SymbolTable};
use std::fmt;

/// An immutable keyword query (canonical sorted bag of words).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Query(Box<[Sym]>);

impl Query {
    /// Build from a word sequence (canonicalized by sorting).
    pub fn new(words: &[Sym]) -> Self {
        let mut v: Vec<Sym> = words.to_vec();
        v.sort_unstable();
        Self(v.into_boxed_slice())
    }

    /// The query's words.
    pub fn words(&self) -> &[Sym] {
        &self.0
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the query has no words.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Render for display.
    pub fn render(&self, table: &SymbolTable) -> String {
        table.render(&self.0)
    }
}

impl fmt::Debug for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Query({:?})", self.0)
    }
}

impl From<Vec<Sym>> for Query {
    fn from(mut v: Vec<Sym>) -> Self {
        v.sort_unstable();
        Self(v.into_boxed_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_and_hashing_by_word_bag() {
        use std::collections::HashSet;
        let a = Query::new(&[Sym(1), Sym(2)]);
        let b = Query::new(&[Sym(1), Sym(2)]);
        let c = Query::new(&[Sym(2), Sym(1)]);
        let d = Query::new(&[Sym(2), Sym(1), Sym(1)]);
        assert_eq!(a, b);
        assert_eq!(a, c, "queries are bags: permutations are equal");
        assert_ne!(a, d, "multiplicity still matters");
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert!(set.contains(&c));
    }

    #[test]
    fn render_uses_symbol_table() {
        let mut t = SymbolTable::new();
        let q = Query::new(&[t.intern("hpc"), t.intern("research")]);
        assert_eq!(q.render(&t), "hpc research");
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
