//! L2Q configuration: the paper's parameters with their published defaults.

use crate::candidates::CandidateConfig;
use crate::template::TemplateMode;
use l2q_graph::WalkConfig;

/// All knobs of the L2Q pipeline (paper Sect. VI-A "Settings").
#[derive(Clone, Copy, Debug)]
pub struct L2qConfig {
    /// Random-walk settings; `walk.alpha` is the paper's regularization
    /// parameter α = 0.15.
    pub walk: WalkConfig,
    /// Candidate enumeration settings (L = 3 etc.).
    pub candidates: CandidateConfig,
    /// Template enumeration policy.
    pub template_mode: TemplateMode,
    /// Adaptation parameter λ = 10 controlling "how much we adapt from the
    /// domain entities" (Eq. 21–22).
    pub lambda: f64,
    /// Seed-query recall parameter r0 ∈ (0, 1) — the base case of the
    /// collective-recall recursion, "chosen by cross validation".
    pub r0: f64,
    /// Number of queries per harvest beyond the seed (paper varies 2–5,
    /// default 3).
    pub n_queries: usize,
    /// Practical extension: stop the harvest early after this many
    /// *consecutive* queries that retrieved no new page (each fired query
    /// costs time/money on a commercial API). `None` (default) keeps the
    /// paper's fixed budget.
    pub stop_after_barren: Option<usize>,
    /// Carry an `EntityPhaseState` across harvest steps so each selection
    /// diffs against the previous one instead of rebuilding the entity
    /// graph from scratch. Output is bit-identical either way; this is
    /// purely a speed knob (and the ablation switch for benches).
    pub incremental_phase: bool,
    /// Warm-start each walk's fixpoint solve from the previous step's
    /// converged utilities. The walk update is a contraction, so a warm
    /// start converges to the same fixpoint within the solver tolerance —
    /// in far fewer sweeps.
    pub warm_start: bool,
    /// Run the independent walks of one selection (and the per-aspect
    /// solves of the domain phase) on scoped threads. Each walk's own
    /// iteration order is untouched, so results are bit-identical to the
    /// serial path.
    pub parallel_walks: bool,
    /// Bound-and-prune the context-aware selection argmax: stop the walk
    /// solves early once certified error bounds prove the winner, instead
    /// of converging every candidate's utility to full tolerance. The
    /// pruned path certifies, never approximates — whenever the bounds
    /// cannot prove the winner it falls back to the exact solve — so the
    /// fired-query sequence stays bit-identical to the unpruned path.
    pub prune: bool,
}

impl Default for L2qConfig {
    fn default() -> Self {
        Self {
            walk: WalkConfig::default(),
            candidates: CandidateConfig::default(),
            template_mode: TemplateMode::default(),
            lambda: 10.0,
            r0: 0.3,
            n_queries: 3,
            stop_after_barren: None,
            incremental_phase: true,
            warm_start: true,
            parallel_walks: true,
            prune: true,
        }
    }
}

impl L2qConfig {
    /// Builder-style override of the query budget.
    pub fn with_n_queries(mut self, n: usize) -> Self {
        self.n_queries = n;
        self
    }

    /// Builder-style override of the seed recall parameter.
    pub fn with_r0(mut self, r0: f64) -> Self {
        self.r0 = r0;
        self
    }

    /// Builder-style override of λ.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Builder-style override of the incremental-phase knob.
    pub fn with_incremental_phase(mut self, on: bool) -> Self {
        self.incremental_phase = on;
        self
    }

    /// Builder-style override of the warm-start knob.
    pub fn with_warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Builder-style override of the parallel-walks knob.
    pub fn with_parallel_walks(mut self, on: bool) -> Self {
        self.parallel_walks = on;
        self
    }

    /// Builder-style override of the bound-and-prune knob.
    pub fn with_prune(mut self, on: bool) -> Self {
        self.prune = on;
        self
    }

    /// The seed's original selection path: from-scratch phase builds,
    /// cold solver starts, serial walks, no pruning. The reference
    /// configuration for determinism tests and cold-vs-incremental
    /// benches.
    pub fn cold_serial(self) -> Self {
        self.with_incremental_phase(false)
            .with_warm_start(false)
            .with_parallel_walks(false)
            .with_prune(false)
    }

    /// Validate ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0 < self.r0 && self.r0 < 1.0) {
            return Err(format!("r0 must be in (0,1), got {}", self.r0));
        }
        if self.lambda <= 0.0 {
            return Err(format!("lambda must be positive, got {}", self.lambda));
        }
        if self.candidates.max_len == 0 {
            return Err("max query length must be ≥ 1".into());
        }
        if self.n_queries == 0 {
            return Err("n_queries must be ≥ 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = L2qConfig::default();
        assert_eq!(c.walk.alpha, 0.15);
        assert_eq!(c.lambda, 10.0);
        assert_eq!(c.candidates.max_len, 3);
        assert_eq!(c.n_queries, 3);
        assert!(c.incremental_phase && c.warm_start && c.parallel_walks && c.prune);
        c.validate().unwrap();
    }

    #[test]
    fn cold_serial_turns_every_speed_knob_off() {
        let c = L2qConfig::default().cold_serial();
        assert!(!c.incremental_phase && !c.warm_start && !c.parallel_walks && !c.prune);
        c.validate().unwrap();
    }

    #[test]
    fn builders_compose() {
        let c = L2qConfig::default()
            .with_n_queries(5)
            .with_r0(0.4)
            .with_lambda(2.0);
        assert_eq!(c.n_queries, 5);
        assert_eq!(c.r0, 0.4);
        assert_eq!(c.lambda, 2.0);
        c.validate().unwrap();
    }

    #[test]
    fn bad_values_rejected() {
        assert!(L2qConfig::default().with_r0(0.0).validate().is_err());
        assert!(L2qConfig::default().with_r0(1.0).validate().is_err());
        assert!(L2qConfig::default().with_lambda(-1.0).validate().is_err());
        assert!(L2qConfig::default().with_n_queries(0).validate().is_err());
    }
}
