//! L2Q configuration: the paper's parameters with their published defaults.

use crate::candidates::CandidateConfig;
use crate::template::TemplateMode;
use l2q_graph::WalkConfig;

/// All knobs of the L2Q pipeline (paper Sect. VI-A "Settings").
#[derive(Clone, Copy, Debug)]
pub struct L2qConfig {
    /// Random-walk settings; `walk.alpha` is the paper's regularization
    /// parameter α = 0.15.
    pub walk: WalkConfig,
    /// Candidate enumeration settings (L = 3 etc.).
    pub candidates: CandidateConfig,
    /// Template enumeration policy.
    pub template_mode: TemplateMode,
    /// Adaptation parameter λ = 10 controlling "how much we adapt from the
    /// domain entities" (Eq. 21–22).
    pub lambda: f64,
    /// Seed-query recall parameter r0 ∈ (0, 1) — the base case of the
    /// collective-recall recursion, "chosen by cross validation".
    pub r0: f64,
    /// Number of queries per harvest beyond the seed (paper varies 2–5,
    /// default 3).
    pub n_queries: usize,
    /// Practical extension: stop the harvest early after this many
    /// *consecutive* queries that retrieved no new page (each fired query
    /// costs time/money on a commercial API). `None` (default) keeps the
    /// paper's fixed budget.
    pub stop_after_barren: Option<usize>,
}

impl Default for L2qConfig {
    fn default() -> Self {
        Self {
            walk: WalkConfig::default(),
            candidates: CandidateConfig::default(),
            template_mode: TemplateMode::default(),
            lambda: 10.0,
            r0: 0.3,
            n_queries: 3,
            stop_after_barren: None,
        }
    }
}

impl L2qConfig {
    /// Builder-style override of the query budget.
    pub fn with_n_queries(mut self, n: usize) -> Self {
        self.n_queries = n;
        self
    }

    /// Builder-style override of the seed recall parameter.
    pub fn with_r0(mut self, r0: f64) -> Self {
        self.r0 = r0;
        self
    }

    /// Builder-style override of λ.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Validate ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0 < self.r0 && self.r0 < 1.0) {
            return Err(format!("r0 must be in (0,1), got {}", self.r0));
        }
        if self.lambda <= 0.0 {
            return Err(format!("lambda must be positive, got {}", self.lambda));
        }
        if self.candidates.max_len == 0 {
            return Err("max query length must be ≥ 1".into());
        }
        if self.n_queries == 0 {
            return Err("n_queries must be ≥ 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = L2qConfig::default();
        assert_eq!(c.walk.alpha, 0.15);
        assert_eq!(c.lambda, 10.0);
        assert_eq!(c.candidates.max_len, 3);
        assert_eq!(c.n_queries, 3);
        c.validate().unwrap();
    }

    #[test]
    fn builders_compose() {
        let c = L2qConfig::default()
            .with_n_queries(5)
            .with_r0(0.4)
            .with_lambda(2.0);
        assert_eq!(c.n_queries, 5);
        assert_eq!(c.r0, 0.4);
        assert_eq!(c.lambda, 2.0);
        c.validate().unwrap();
    }

    #[test]
    fn bad_values_rejected() {
        assert!(L2qConfig::default().with_r0(0.0).validate().is_err());
        assert!(L2qConfig::default().with_r0(1.0).validate().is_err());
        assert!(L2qConfig::default().with_lambda(-1.0).validate().is_err());
        assert!(L2qConfig::default().with_n_queries(0).validate().is_err());
    }
}
