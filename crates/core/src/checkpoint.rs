//! Portable (JSON) serialization of a [`HarvestState`] — the per-session
//! checkpoint format used by the durable store (`l2q-store`).
//!
//! The same string-keyed approach as [`crate::portable`]: symbols and page
//! ids are process-local in principle, so queries are stored as word
//! strings and re-resolved on import. Unlike a domain model, a harvest
//! checkpoint cannot *drop* unresolvable entries — the fired queries are
//! the context Φ and the gathered pages are the session's result set — so
//! import fails loudly ([`ImportError::Vocabulary`] /
//! [`ImportError::Corrupt`]) instead of degrading silently.
//!
//! Only the *decisions* are persisted: fired queries, per-step page gains
//! and the collective-recall recursion state. The derived caches
//! ([`crate::StopwordCache`], [`crate::IncrementalCandidates`], the
//! incremental [`crate::EntityPhaseState`]) are rebuilt from scratch on
//! the next step via the existing cold-path builders, which produce
//! bit-identical structures for a given page prefix (the invariant proven
//! by `incremental_enumeration_matches_batch_exactly` and the
//! `determinism` integration suite) — so a restored session continues
//! exactly as the uninterrupted one would.
//!
//! Floats that must survive bit-for-bit (the collective state) are stored
//! as 16-hex-digit IEEE-754 bit patterns, not JSON numbers: the vendored
//! JSON value type is `f64`-backed and exact only where `f64` is.

use crate::candidates::{IncrementalCandidates, StopwordCache};
use crate::context::CollectiveState;
use crate::entity_phase::EntityPhaseState;
use crate::harvester::{HarvestState, IterationSnapshot, StopReason};
use crate::portable::ImportError;
use crate::query::Query;
use l2q_corpus::{Corpus, EntityId, PageId};
use l2q_text::Sym;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::Mutex;
use std::time::Duration;

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Render an `f64` as its exact IEEE-754 bit pattern (16 hex digits).
pub fn f64_to_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Parse a [`f64_to_hex`] bit pattern back, bit-for-bit.
pub fn f64_from_hex(s: &str) -> Option<f64> {
    (s.len() == 16)
        .then(|| u64::from_str_radix(s, 16).ok())
        .flatten()
        .map(f64::from_bits)
}

/// One selector iteration in portable form: the chosen query (word
/// strings) and the pages it newly retrieved.
#[derive(Serialize, Deserialize, Clone, Debug, PartialEq, Eq)]
pub struct PortableIteration {
    /// The fired query as word strings (canonical order).
    pub query: Vec<String>,
    /// Pages first retrieved by this query, in retrieval order.
    pub new_pages: Vec<u32>,
}

/// The collective-recall recursion state (`R(Φ)`, `R^(Y*)(Φ)`) as exact
/// bit patterns, so restored sessions score candidates identically.
#[derive(Serialize, Deserialize, Clone, Debug, PartialEq, Eq)]
pub struct PortableCollective {
    /// `R(Φ)` bits ([`f64_to_hex`]).
    pub r_phi: String,
    /// `R^(Y*)(Φ)` bits ([`f64_to_hex`]).
    pub rstar_phi: String,
}

impl PortableCollective {
    /// Export a [`CollectiveState`] bit-exactly.
    pub fn from_state(s: &CollectiveState) -> Self {
        Self {
            r_phi: f64_to_hex(s.recall_phi()),
            rstar_phi: f64_to_hex(s.recall_star_phi()),
        }
    }

    /// Reassemble the [`CollectiveState`] bit-exactly.
    pub fn to_state(&self) -> Result<CollectiveState, ImportError> {
        let r = f64_from_hex(&self.r_phi)
            .ok_or_else(|| ImportError::Corrupt(format!("bad r_phi bits '{}'", self.r_phi)))?;
        let rs = f64_from_hex(&self.rstar_phi).ok_or_else(|| {
            ImportError::Corrupt(format!("bad rstar_phi bits '{}'", self.rstar_phi))
        })?;
        Ok(CollectiveState::from_parts(r, rs))
    }
}

/// The portable form of a [`HarvestState`]: everything needed to continue
/// the session bit-identically on a process that shares the corpus.
#[derive(Serialize, Deserialize, Clone, Debug, PartialEq, Eq)]
pub struct PortableHarvestState {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Target entity index.
    pub entity: u32,
    /// Target aspect name (e.g. `"RESEARCH"`).
    pub aspect: String,
    /// The seed query as word strings (integrity-checked on import).
    pub seed_query: Vec<String>,
    /// Pages the seed query retrieved, in engine order (may repeat).
    pub seed_results: Vec<u32>,
    /// Selector iterations so far, in order.
    pub iterations: Vec<PortableIteration>,
    /// Cumulative wall-clock nanoseconds spent inside selection.
    pub selection_time_nanos: u64,
    /// Stop reason once finished ([`StopReason::as_str`] form).
    pub finished: Option<String>,
    /// Collective-recall state of a context-aware selector, if any.
    pub collective: Option<PortableCollective>,
}

fn render_words(q: &Query, corpus: &Corpus) -> Vec<String> {
    q.words()
        .iter()
        .map(|&w| corpus.symbols.resolve(w).to_owned())
        .collect()
}

fn resolve_query(words: &[String], corpus: &Corpus) -> Result<Query, ImportError> {
    if words.is_empty() {
        return Err(ImportError::Corrupt("empty query".into()));
    }
    let syms: Vec<Sym> = words
        .iter()
        .map(|w| {
            corpus
                .symbols
                .get(w)
                .ok_or_else(|| ImportError::Vocabulary(w.clone()))
        })
        .collect::<Result<_, _>>()?;
    Ok(Query::new(&syms))
}

fn check_page(p: u32, corpus: &Corpus) -> Result<PageId, ImportError> {
    if (p as usize) < corpus.pages.len() {
        Ok(PageId(p))
    } else {
        Err(ImportError::Corrupt(format!("page id {p} out of range")))
    }
}

impl HarvestState {
    /// Export to the portable form. `collective` is the selector's
    /// recursion state (see
    /// [`crate::QuerySelector::collective_state`]); pass `None` for
    /// context-free selectors.
    pub fn export(
        &self,
        corpus: &Corpus,
        collective: Option<CollectiveState>,
    ) -> PortableHarvestState {
        PortableHarvestState {
            version: CHECKPOINT_VERSION,
            entity: self.entity.0,
            aspect: corpus.aspect_name(self.aspect).to_owned(),
            seed_query: self
                .fired
                .first()
                .map(|q| render_words(q, corpus))
                .unwrap_or_default(),
            seed_results: self.seed_results.iter().map(|p| p.0).collect(),
            iterations: self
                .iterations
                .iter()
                .map(|it| PortableIteration {
                    query: render_words(&it.query, corpus),
                    new_pages: it.new_pages.iter().map(|p| p.0).collect(),
                })
                .collect(),
            selection_time_nanos: self.selection_time.as_nanos() as u64,
            finished: self.finished.map(|r| r.as_str().to_owned()),
            collective: collective.map(|s| PortableCollective::from_state(&s)),
        }
    }

    /// Export as pretty JSON.
    pub fn export_json(&self, corpus: &Corpus, collective: Option<CollectiveState>) -> String {
        serde_json::to_string_pretty(&self.export(corpus, collective))
            .expect("serializable checkpoint")
    }

    /// Import from the portable form, re-resolving strings against
    /// `corpus` and rebuilding every derived cache cold.
    ///
    /// Returns the restored state plus the collective-recall state to hand
    /// back to the selector
    /// ([`crate::QuerySelector::restore_collective`]). The next
    /// [`HarvestState::step`] then continues exactly as the uninterrupted
    /// session would have.
    pub fn import(
        p: &PortableHarvestState,
        corpus: &Corpus,
    ) -> Result<(Self, Option<CollectiveState>), ImportError> {
        if p.version != CHECKPOINT_VERSION {
            return Err(ImportError::Version(p.version));
        }
        if (p.entity as usize) >= corpus.entities.len() {
            return Err(ImportError::Corrupt(format!(
                "entity index {} out of range",
                p.entity
            )));
        }
        let entity = EntityId(p.entity);
        let aspect = corpus
            .aspect_by_name(&p.aspect)
            .ok_or(ImportError::AspectMismatch)?;

        // The seed must be *this corpus's* seed query for the entity —
        // anything else means the checkpoint belongs to a different
        // corpus build and the replayed context would be meaningless.
        let seed = resolve_query(&p.seed_query, corpus)?;
        if seed != Query::new(corpus.seed_query(entity)) {
            return Err(ImportError::Corrupt(format!(
                "seed query mismatch for entity {}",
                p.entity
            )));
        }

        let seed_results: Vec<PageId> = p
            .seed_results
            .iter()
            .map(|&id| check_page(id, corpus))
            .collect::<Result<_, _>>()?;

        // Rebuild gathered/seen exactly as `begin_with` + each `step_with`
        // did: dedup seed results first, then append each step's new pages
        // (which must indeed be new — repeats mean corruption).
        let mut gathered: Vec<PageId> = Vec::new();
        let mut seen: HashSet<PageId> = HashSet::new();
        for &pg in &seed_results {
            if seen.insert(pg) {
                gathered.push(pg);
            }
        }

        let mut fired = vec![seed];
        let mut iterations = Vec::with_capacity(p.iterations.len());
        let mut barren_streak = 0usize;
        for it in &p.iterations {
            let query = resolve_query(&it.query, corpus)?;
            let mut new_pages = Vec::with_capacity(it.new_pages.len());
            for &id in &it.new_pages {
                let pg = check_page(id, corpus)?;
                if !seen.insert(pg) {
                    return Err(ImportError::Corrupt(format!(
                        "page {id} recorded as new twice"
                    )));
                }
                gathered.push(pg);
                new_pages.push(pg);
            }
            if new_pages.is_empty() {
                barren_streak += 1;
            } else {
                barren_streak = 0;
            }
            fired.push(query.clone());
            iterations.push(IterationSnapshot {
                query,
                new_pages,
                gathered_after: gathered.len(),
            });
        }

        let finished = match &p.finished {
            None => None,
            Some(s) => Some(
                StopReason::parse(s)
                    .ok_or_else(|| ImportError::Corrupt(format!("unknown stop reason '{s}'")))?,
            ),
        };
        let collective = p.collective.as_ref().map(|c| c.to_state()).transpose()?;

        Ok((
            Self {
                entity,
                aspect,
                seed_results,
                fired,
                gathered,
                seen,
                iterations,
                selection_time: Duration::from_nanos(p.selection_time_nanos),
                barren_streak,
                stops: StopwordCache::new(),
                enumerated: IncrementalCandidates::new(),
                phase: Mutex::new(EntityPhaseState::new()),
                finished,
            },
            collective,
        ))
    }

    /// Import from JSON.
    pub fn import_json(
        json: &str,
        corpus: &Corpus,
    ) -> Result<(Self, Option<CollectiveState>), ImportError> {
        let portable: PortableHarvestState =
            serde_json::from_str(json).map_err(|e| ImportError::Json(e.to_string()))?;
        Self::import(&portable, corpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::L2qConfig;
    use crate::harvester::Harvester;
    use crate::selector::{L2qSelector, QuerySelector};
    use l2q_aspect::RelevanceOracle;
    use l2q_corpus::{generate, researchers_domain, CorpusConfig};
    use l2q_retrieval::SearchEngine;
    use std::sync::Arc;

    #[test]
    fn f64_hex_round_trips_every_bit_pattern() {
        for x in [
            0.0,
            -0.0,
            1.0,
            0.1 + 0.2,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::NEG_INFINITY,
            std::f64::consts::PI,
        ] {
            let back = f64_from_hex(&f64_to_hex(x)).unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
        assert_eq!(f64_from_hex("nonsense").map(f64::to_bits), None);
        assert_eq!(f64_from_hex("123"), None);
    }

    #[test]
    fn export_import_round_trips_mid_session() {
        let corpus = Arc::new(generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap());
        let engine = SearchEngine::with_defaults(corpus.clone());
        let oracle = RelevanceOracle::from_truth(&corpus);
        let harvester = Harvester {
            corpus: &corpus,
            engine: &engine,
            oracle: &oracle,
            domain: None,
            cfg: L2qConfig::default(),
        };
        let aspect = corpus.aspect_by_name("RESEARCH").unwrap();
        let mut sel = L2qSelector::l2qbal();
        sel.reset();
        let mut state = HarvestState::begin(&harvester, EntityId(1), aspect);
        state.step(&harvester, &mut sel);
        state.step(&harvester, &mut sel);

        let portable = state.export(&corpus, sel.collective_state());
        assert_eq!(portable.iterations.len(), state.steps_taken());
        let (restored, collective) = HarvestState::import(&portable, &corpus).unwrap();
        assert_eq!(restored.entity(), state.entity());
        assert_eq!(restored.aspect(), state.aspect());
        assert_eq!(restored.gathered(), state.gathered());
        assert_eq!(restored.steps_taken(), state.steps_taken());
        assert_eq!(restored.fired, state.fired);
        assert_eq!(restored.stop_reason(), state.stop_reason());
        // The collective state survives bit-for-bit.
        let (a, b) = (collective.unwrap(), sel.collective_state().unwrap());
        assert_eq!(a.recall_phi().to_bits(), b.recall_phi().to_bits());
        assert_eq!(a.recall_star_phi().to_bits(), b.recall_star_phi().to_bits());

        // JSON round trip too.
        let json = state.export_json(&corpus, sel.collective_state());
        let (from_json, _) = HarvestState::import_json(&json, &corpus).unwrap();
        assert_eq!(from_json.gathered(), state.gathered());
    }

    #[test]
    fn import_rejects_bad_inputs() {
        let corpus = Arc::new(generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap());
        let engine = SearchEngine::with_defaults(corpus.clone());
        let oracle = RelevanceOracle::from_truth(&corpus);
        let harvester = Harvester {
            corpus: &corpus,
            engine: &engine,
            oracle: &oracle,
            domain: None,
            cfg: L2qConfig::default(),
        };
        let aspect = corpus.aspect_by_name("RESEARCH").unwrap();
        let mut sel = L2qSelector::l2qbal();
        let mut state = HarvestState::begin(&harvester, EntityId(0), aspect);
        state.step(&harvester, &mut sel);
        let good = state.export(&corpus, None);

        let mut bad = good.clone();
        bad.version = 9;
        assert!(matches!(
            HarvestState::import(&bad, &corpus),
            Err(ImportError::Version(9))
        ));

        let mut bad = good.clone();
        bad.aspect = "NOPE".into();
        assert!(matches!(
            HarvestState::import(&bad, &corpus),
            Err(ImportError::AspectMismatch)
        ));

        let mut bad = good.clone();
        bad.seed_query = vec!["zzz_never_interned".into()];
        assert!(matches!(
            HarvestState::import(&bad, &corpus),
            Err(ImportError::Vocabulary(_))
        ));

        let mut bad = good.clone();
        bad.seed_results.push(u32::MAX);
        assert!(matches!(
            HarvestState::import(&bad, &corpus),
            Err(ImportError::Corrupt(_))
        ));

        let mut bad = good.clone();
        if let Some(first) = bad.iterations.first_mut() {
            first.new_pages = bad.seed_results.clone();
            assert!(matches!(
                HarvestState::import(&bad, &corpus),
                Err(ImportError::Corrupt(_))
            ));
        }

        let mut bad = good.clone();
        bad.finished = Some("gave_up".into());
        assert!(matches!(
            HarvestState::import(&bad, &corpus),
            Err(ImportError::Corrupt(_))
        ));

        let mut bad = good;
        bad.collective = Some(PortableCollective {
            r_phi: "xyz".into(),
            rstar_phi: f64_to_hex(0.5),
        });
        assert!(matches!(
            HarvestState::import(&bad, &corpus),
            Err(ImportError::Corrupt(_))
        ));
    }
}
