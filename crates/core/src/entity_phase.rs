//! The entity phase (paper Sect. IV-C): infer candidate-query utilities for
//! the target entity, once per query selection.
//!
//! The entity graph spans the current result pages PE, the candidate
//! queries QE (enumerated from PE plus the frequent domain queries) and the
//! templates TE abstracting QE. Regularization comes from two sides:
//! pages carry their aspect relevance Y (Eq. 11–12), and templates carry
//! their domain-phase utilities scaled by the adaptation parameter λ
//! (Eq. 21–22). Solving the fixpoint (Eq. 20) yields `U_E(q)` for every
//! candidate.
//!
//! Besides the standard precision/recall walks, the phase exposes the two
//! auxiliary recall walks the context-aware model needs (Sect. V):
//!
//! * recall w.r.t. Ỹ (relevant *gathered* pages, page regularization
//!   only) — the redundancy estimator `R^(Ỹ)(q)` in Δ(Φ,q). Template
//!   regularization is deliberately omitted here: Ỹ is a statement about
//!   the pages already gathered, so aspect-level domain knowledge must
//!   not leak into the overlap estimate.
//! * recall w.r.t. Y* (every page relevant) — the denominator of
//!   collective precision. This walk carries its own domain knowledge,
//!   λ·R*_D(t) (domain recall with every page relevant), so that the
//!   numerator and denominator of the precision ratio are estimated
//!   symmetrically; regularizing only the numerator would make any
//!   template-backed query look precise regardless of what it retrieves.

use crate::config::L2qConfig;
use crate::domain_phase::DomainModel;
use crate::query::Query;
use crate::template::{templates_of, Template};
use l2q_aspect::RelevanceOracle;
use l2q_corpus::{AspectId, Corpus, PageId};
use l2q_graph::{solve, GraphBuilder, Regularization, ReinforcementGraph, UtilityKind};
use l2q_text::Bow;
use std::collections::HashMap;

/// A frozen entity graph ready to solve.
pub struct EntityPhase<'a> {
    cfg: &'a L2qConfig,
    aspect: AspectId,
    pages: Vec<PageId>,
    relevant: Vec<bool>,
    candidates: Vec<Query>,
    templates: Vec<Template>,
    graph: ReinforcementGraph,
    /// λ·P_D(t), λ·R_D(t) per template (0 where the domain has no utility).
    template_reg: (Vec<f64>, Vec<f64>),
    /// λ·R*_D(t) per template — domain knowledge for the Y*-walk, so the
    /// collective-precision denominator is estimated with the same
    /// machinery as its numerator.
    template_reg_star: Vec<f64>,
}

impl<'a> EntityPhase<'a> {
    /// Build the entity graph.
    ///
    /// `pages` are the current result pages PE (deduplicated, in gathering
    /// order); `candidates` the query pool QE (the caller decides whether
    /// frequent domain queries are included — that is what distinguishes
    /// the domain-aware selectors from the Sect. III ablations). When
    /// `domain` is `None` (or `use_templates` is false via an empty
    /// candidate template set) the graph degenerates to the paper's
    /// template-free Sect. III model.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's Eq. 20 inputs
    pub fn build(
        corpus: &Corpus,
        aspect: AspectId,
        pages: &[PageId],
        oracle: &RelevanceOracle,
        candidates: Vec<Query>,
        domain: Option<&DomainModel>,
        use_templates: bool,
        cfg: &'a L2qConfig,
    ) -> Self {
        let relevant: Vec<bool> = pages
            .iter()
            .map(|&p| oracle.is_relevant(aspect, p))
            .collect();

        // Page bags for containment tests.
        let bows: Vec<&Bow> = pages.iter().map(|&p| corpus.page(p).bow()).collect();

        // Templates over the candidate set.
        let mut templates: Vec<Template> = Vec::new();
        let mut template_index: HashMap<Template, u32> = HashMap::new();
        let mut qt_edges: Vec<(u32, u32)> = Vec::new();
        if use_templates {
            for (qi, q) in candidates.iter().enumerate() {
                for t in templates_of(q, corpus, cfg.template_mode) {
                    let ti = *template_index.entry(t.clone()).or_insert_with(|| {
                        templates.push(t);
                        (templates.len() - 1) as u32
                    });
                    qt_edges.push((qi as u32, ti));
                }
            }
        }

        // Page–query containment edges.
        let mut builder = GraphBuilder::new(pages.len(), candidates.len(), templates.len());
        for (qi, q) in candidates.iter().enumerate() {
            let qbow = Bow::from_words(q.words());
            for (pi, bow) in bows.iter().enumerate() {
                if bow.contains_all(&qbow) {
                    builder.page_query(pi as u32, qi as u32, 1.0);
                }
            }
        }
        for &(q, t) in &qt_edges {
            builder.query_template(q, t, 1.0);
        }
        let graph = builder.build();

        // Template regularization from the domain (Eq. 21–22).
        let mut treg_p = vec![0.0; templates.len()];
        let mut treg_r = vec![0.0; templates.len()];
        let mut treg_star = vec![0.0; templates.len()];
        if let Some(dm) = domain {
            for (i, t) in templates.iter().enumerate() {
                if let Some(u) = dm.template_utility(aspect, t) {
                    treg_p[i] = cfg.lambda * u.precision;
                    treg_r[i] = cfg.lambda * u.recall;
                }
                if let Some(rs) = dm.template_recall_star(t) {
                    treg_star[i] = cfg.lambda * rs;
                }
            }
        }

        Self {
            cfg,
            aspect,
            pages: pages.to_vec(),
            relevant,
            candidates,
            templates,
            graph,
            template_reg: (treg_p, treg_r),
            template_reg_star: treg_star,
        }
    }

    /// The candidate queries (vertex order of all per-query outputs).
    pub fn candidates(&self) -> &[Query] {
        &self.candidates
    }

    /// The pages PE of the graph.
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Y over PE.
    pub fn relevant(&self) -> &[bool] {
        &self.relevant
    }

    /// The aspect being harvested.
    pub fn aspect(&self) -> AspectId {
        self.aspect
    }

    /// Templates in the graph.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    /// Whether each candidate has at least one edge (page containment or
    /// template). Unconnected candidates carry no evidence at all; the
    /// context-aware selector must skip them — their collective scores
    /// would be the meaningless "status quo" ratio.
    pub fn connected(&self) -> Vec<bool> {
        (0..self.candidates.len())
            .map(|q| self.graph.query_page_deg[q] > 0.0 || self.graph.query_template_deg[q] > 0.0)
            .collect()
    }

    /// Graph statistics `(pages, queries, templates, edges)`.
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (
            self.graph.n_pages(),
            self.graph.n_queries(),
            self.graph.n_templates(),
            self.graph.n_edges(),
        )
    }

    /// `P_E(q)` per candidate — precision walk with page relevance and
    /// domain-template regularization.
    pub fn precision(&self) -> Vec<f64> {
        let mut reg = Regularization::precision_from_relevance(&self.graph, &self.relevant);
        reg.templates.clone_from(&self.template_reg.0);
        solve(&self.graph, UtilityKind::Precision, &reg, &self.cfg.walk).queries
    }

    /// `R_E(q)` per candidate — recall walk with page relevance and
    /// domain-template regularization.
    pub fn recall(&self) -> Vec<f64> {
        let mut reg = Regularization::recall_from_relevance(&self.graph, &self.relevant);
        reg.templates.clone_from(&self.template_reg.1);
        solve(&self.graph, UtilityKind::Recall, &reg, &self.cfg.walk).queries
    }

    /// `R^(Ỹ)_E(q)` per candidate — recall walk regularized on the
    /// relevant *gathered* pages only (no template regularization).
    pub fn recall_gathered(&self) -> Vec<f64> {
        let reg = Regularization::recall_from_relevance(&self.graph, &self.relevant);
        solve(&self.graph, UtilityKind::Recall, &reg, &self.cfg.walk).queries
    }

    /// `R^(Y*)_E(q)` per candidate — recall walk where *every* page is
    /// relevant, with the Y*-side domain-template regularization
    /// (λ·R*_D(t)) so numerator and denominator of collective precision
    /// see symmetric domain knowledge.
    pub fn recall_all(&self) -> Vec<f64> {
        let all = vec![true; self.pages.len()];
        let mut reg = Regularization::recall_from_relevance(&self.graph, &all);
        reg.templates.clone_from(&self.template_reg_star);
        solve(&self.graph, UtilityKind::Recall, &reg, &self.cfg.walk).queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{pages_queries, StopwordCache};
    use crate::domain_phase::learn_domain;
    use l2q_corpus::{generate, researchers_domain, CorpusConfig, EntityId};

    fn setup() -> (Corpus, RelevanceOracle) {
        let c = generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap();
        let o = RelevanceOracle::from_truth(&c);
        (c, o)
    }

    fn phase_for(
        corpus: &Corpus,
        _oracle: &RelevanceOracle,
        cfg: &L2qConfig,
        with_domain: Option<&DomainModel>,
    ) -> (Vec<PageId>, Vec<Query>) {
        let e = EntityId(6);
        let pages: Vec<PageId> = corpus.pages_of(e).iter().take(8).map(|p| p.id).collect();
        let mut stops = StopwordCache::new();
        let page_refs: Vec<_> = pages.iter().map(|&p| corpus.page(p)).collect();
        let mut candidates = pages_queries(
            corpus,
            page_refs.iter().copied(),
            cfg.candidates.max_len,
            &mut stops,
        );
        if let Some(dm) = with_domain {
            for q in dm.frequent_queries() {
                candidates.push(q.clone());
            }
            candidates.sort();
            candidates.dedup();
        }
        (pages, candidates)
    }

    #[test]
    fn phase_builds_and_solves() {
        let (c, o) = setup();
        let cfg = L2qConfig::default();
        let aspect = c.aspect_by_name("RESEARCH").unwrap();
        let (pages, candidates) = phase_for(&c, &o, &cfg, None);
        let phase = EntityPhase::build(&c, aspect, &pages, &o, candidates, None, true, &cfg);
        let (np, nq, nt, ne) = phase.shape();
        assert_eq!(np, pages.len());
        assert!(nq > 50);
        assert!(nt > 0);
        assert!(ne > nq, "each query should touch at least one page");
        let p = phase.precision();
        let r = phase.recall();
        assert_eq!(p.len(), nq);
        assert_eq!(r.len(), nq);
        assert!(p.iter().all(|v| v.is_finite() && *v >= 0.0));
        assert!(r.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn queries_in_relevant_pages_score_higher_precision() {
        let (c, o) = setup();
        let cfg = L2qConfig::default();
        let aspect = c.aspect_by_name("RESEARCH").unwrap();
        let (pages, candidates) = phase_for(&c, &o, &cfg, None);
        let phase = EntityPhase::build(&c, aspect, &pages, &o, candidates, None, true, &cfg);
        let p = phase.precision();

        // Average precision of queries contained only in relevant pages
        // should beat queries contained only in irrelevant pages.
        let mut only_rel = Vec::new();
        let mut only_irr = Vec::new();
        for (qi, q) in phase.candidates().iter().enumerate() {
            let qbow = Bow::from_words(q.words());
            let mut in_rel = false;
            let mut in_irr = false;
            for (pi, &pid) in phase.pages().iter().enumerate() {
                if c.page(pid).bow().contains_all(&qbow) {
                    if phase.relevant()[pi] {
                        in_rel = true;
                    } else {
                        in_irr = true;
                    }
                }
            }
            match (in_rel, in_irr) {
                (true, false) => only_rel.push(p[qi]),
                (false, true) => only_irr.push(p[qi]),
                _ => {}
            }
        }
        assert!(!only_rel.is_empty() && !only_irr.is_empty());
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&only_rel) > avg(&only_irr),
            "relevant-only queries {:.4} must out-score irrelevant-only {:.4}",
            avg(&only_rel),
            avg(&only_irr)
        );
    }

    #[test]
    fn domain_templates_boost_matching_candidates() {
        let (c, o) = setup();
        let cfg = L2qConfig::default();
        let aspect = c.aspect_by_name("RESEARCH").unwrap();
        let domain_entities: Vec<EntityId> = c.entity_ids().take(4).collect();
        let dm = learn_domain(&c, &domain_entities, &o, &cfg);
        let (pages, candidates) = phase_for(&c, &o, &cfg, Some(&dm));

        let with = EntityPhase::build(
            &c,
            aspect,
            &pages,
            &o,
            candidates.clone(),
            Some(&dm),
            true,
            &cfg,
        );
        let without = EntityPhase::build(&c, aspect, &pages, &o, candidates, None, true, &cfg);
        let pw = with.precision();
        let po = without.precision();
        // Domain regularization must change the scores of some candidates.
        let changed = pw
            .iter()
            .zip(&po)
            .filter(|(a, b)| (*a - *b).abs() > 1e-9)
            .count();
        assert!(changed > 0, "domain regularization had no effect");
    }

    #[test]
    fn auxiliary_walks_have_expected_shape() {
        let (c, o) = setup();
        let cfg = L2qConfig::default();
        let aspect = c.aspect_by_name("CONTACT").unwrap();
        let (pages, candidates) = phase_for(&c, &o, &cfg, None);
        let phase = EntityPhase::build(&c, aspect, &pages, &o, candidates, None, true, &cfg);
        let r_all = phase.recall_all();
        let r_gathered = phase.recall_gathered();
        assert_eq!(r_all.len(), phase.candidates().len());
        assert_eq!(r_gathered.len(), phase.candidates().len());
        // Y* puts mass on all pages, so broad queries accumulate at least
        // as much recall as under the aspect-restricted Ỹ on average.
        let sum_all: f64 = r_all.iter().sum();
        let sum_gathered: f64 = r_gathered.iter().sum();
        assert!(sum_all > 0.0 && sum_gathered > 0.0);
    }

    #[test]
    fn disabling_templates_removes_template_vertices() {
        let (c, o) = setup();
        let cfg = L2qConfig::default();
        let aspect = c.aspect_by_name("RESEARCH").unwrap();
        let (pages, candidates) = phase_for(&c, &o, &cfg, None);
        let phase = EntityPhase::build(&c, aspect, &pages, &o, candidates, None, false, &cfg);
        let (_, _, nt, _) = phase.shape();
        assert_eq!(nt, 0);
        assert!(phase.precision().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn empty_pages_is_safe() {
        let (c, o) = setup();
        let cfg = L2qConfig::default();
        let aspect = c.aspect_by_name("RESEARCH").unwrap();
        let phase = EntityPhase::build(&c, aspect, &[], &o, Vec::new(), None, true, &cfg);
        assert!(phase.precision().is_empty());
        assert!(phase.recall().is_empty());
    }
}
