//! The entity phase (paper Sect. IV-C): infer candidate-query utilities for
//! the target entity, once per query selection.
//!
//! The entity graph spans the current result pages PE, the candidate
//! queries QE (enumerated from PE plus the frequent domain queries) and the
//! templates TE abstracting QE. Regularization comes from two sides:
//! pages carry their aspect relevance Y (Eq. 11–12), and templates carry
//! their domain-phase utilities scaled by the adaptation parameter λ
//! (Eq. 21–22). Solving the fixpoint (Eq. 20) yields `U_E(q)` for every
//! candidate.
//!
//! Besides the standard precision/recall walks, the phase exposes the two
//! auxiliary recall walks the context-aware model needs (Sect. V):
//!
//! * recall w.r.t. Ỹ (relevant *gathered* pages, page regularization
//!   only) — the redundancy estimator `R^(Ỹ)(q)` in Δ(Φ,q). Template
//!   regularization is deliberately omitted here: Ỹ is a statement about
//!   the pages already gathered, so aspect-level domain knowledge must
//!   not leak into the overlap estimate.
//! * recall w.r.t. Y* (every page relevant) — the denominator of
//!   collective precision. This walk carries its own domain knowledge,
//!   λ·R*_D(t) (domain recall with every page relevant), so that the
//!   numerator and denominator of the precision ratio are estimated
//!   symmetrically; regularizing only the numerator would make any
//!   template-backed query look precise regardless of what it retrieves.
//!
//! ## Incremental rebuilds and warm starts
//!
//! A harvest step adds at most top-k new pages and removes one fired
//! candidate, yet the naive phase re-tests every (candidate, page)
//! containment pair and re-enumerates every template on every step. An
//! [`EntityPhaseState`] carried across steps memoizes both: only new
//! pages × all candidates and new candidates × all pages are
//! containment-tested, and `templates_of` runs once per distinct
//! candidate. The graph itself is reassembled each step by replaying the
//! cached edges in exactly the cold build's insertion order (candidates
//! in pool order, each candidate's pages ascending, templates in
//! first-occurrence order over the pool), so solver float summation —
//! and therefore every utility — is bit-identical to a from-scratch
//! build. The state also keeps each walk's previous fixpoint; mapped
//! onto the current vertex set it becomes a warm start for
//! [`l2q_graph::solve_detailed`], which converges to the same fixpoint
//! (the update map is a contraction) in far fewer sweeps.
//!
//! The state invalidates itself — falling back to a full rebuild — when
//! the aspect or template mode changes, or when the cached page list is
//! no longer a prefix of the current one.

use crate::config::L2qConfig;
use crate::domain_phase::DomainModel;
use crate::fxhash::FxHashMap;
use crate::query::Query;
use crate::template::{templates_of, Template, TemplateMode};
use l2q_aspect::RelevanceOracle;
use l2q_corpus::{AspectId, Corpus, PageId};
use l2q_graph::{
    solve_detailed, solve_fused_detailed, FusedTruncatedSolver, GraphBuilder, Regularization,
    ReinforcementGraph, Scheme, StaticBoundsContext, Utilities, UtilityKind,
};
use l2q_text::Bow;
use std::sync::{Arc, OnceLock};

/// Resolved-once metric handles for the phase-build hot path.
struct PhaseMetrics {
    reuses: Arc<l2q_obs::Counter>,
    rebuilds: Arc<l2q_obs::Counter>,
    sweeps_saved: Arc<l2q_obs::Histogram>,
}

fn phase_metrics() -> &'static PhaseMetrics {
    static M: OnceLock<PhaseMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let reg = l2q_obs::global();
        PhaseMetrics {
            reuses: reg.counter("entity_phase_incremental_reuses_total"),
            rebuilds: reg.counter("entity_phase_rebuilds_total"),
            sweeps_saved: reg.histogram_with_bounds(
                "solver_warm_start_sweeps_saved",
                (0..10).map(|i| f64::powi(2.0, i)).collect(),
            ),
        }
    })
}

/// The four walks the phase can run, used as warm-start slot indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Walk {
    Precision = 0,
    Recall = 1,
    RecallGathered = 2,
    RecallAll = 3,
}

const N_WALKS: usize = 4;

/// How [`EntityPhase::context_walks`] runs its three independent walks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WalkMode {
    /// One walk at a time (the seed's path; `parallel_walks = false`).
    Serial,
    /// One scoped thread per walk (multi-core machines).
    Threads,
    /// One fused graph traversal updating all three systems per edge
    /// load (single-core machines — amortizes the memory-bound part).
    Fused,
}

/// Per-candidate memo inside [`EntityPhaseState`].
#[derive(Debug)]
struct QueryCacheEntry {
    /// The candidate's own bag (left operand of containment tests).
    bow: Bow,
    /// Ascending indices (into the cached page list) of pages whose bag
    /// contains this candidate.
    pages: Vec<u32>,
    /// How many cached pages have been containment-tested (a prefix).
    tested: usize,
    /// Memoized `templates_of` output (`None` until first needed).
    templates: Option<Vec<Template>>,
    /// Pool index at generation `idx_gen` (for warm-start remapping).
    idx: u32,
    idx_gen: u64,
}

/// A walk's converged fixpoint, tagged with the build it belongs to.
#[derive(Debug)]
struct WarmFixpoint {
    generation: u64,
    u: Utilities,
}

/// Warm-start init mapped onto the *current* build's vertex set. Pages
/// are a stable prefix; `None` marks a vertex with no previous value
/// (it initializes at its regularization, exactly like a cold start).
#[derive(Debug)]
struct WarmInit {
    pages: Vec<f64>,
    queries: Vec<Option<f64>>,
    templates: Vec<Option<f64>>,
}

/// Persistent cross-step cache for [`EntityPhase::build_incremental`].
///
/// Owned by whoever owns the harvest loop (the harvester keeps one per
/// session inside `HarvestState`); a default/empty state is always valid
/// and simply makes the first build a full one.
#[derive(Debug, Default)]
pub struct EntityPhaseState {
    aspect: Option<AspectId>,
    template_mode: Option<TemplateMode>,
    /// Pages diffed so far — must stay a prefix of each step's page list.
    pages: Vec<PageId>,
    relevant: Vec<bool>,
    queries: FxHashMap<Query, QueryCacheEntry>,
    /// Template → vertex index of the previous build.
    prev_template_index: FxHashMap<Template, u32>,
    /// Per-walk previous fixpoint.
    warm: [Option<WarmFixpoint>; N_WALKS],
    /// Sweep count of each walk's first (cold) solve in this session —
    /// the baseline for the `solver_warm_start_sweeps_saved` histogram.
    cold_sweeps: [Option<usize>; N_WALKS],
    /// Sweep count of each walk's most recent solve.
    last_sweeps: [Option<usize>; N_WALKS],
    /// Completed build count (0 = never built).
    generation: u64,
}

impl EntityPhaseState {
    /// An empty state (the first build through it is a full one).
    pub fn new() -> Self {
        Self::default()
    }

    /// How many incremental builds have gone through this state.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of distinct candidates ever cached.
    pub fn cached_queries(&self) -> usize {
        self.queries.len()
    }

    /// Sweep counts of each walk's first (cold) solve, indexed
    /// [precision, recall, recall-gathered, recall-all].
    pub fn cold_sweeps(&self) -> [Option<usize>; N_WALKS] {
        self.cold_sweeps
    }

    /// Sweep counts of each walk's most recent solve (same indexing as
    /// [`EntityPhaseState::cold_sweeps`]) — the benches read these to
    /// report exact cold-vs-warm solver effort.
    pub fn last_sweeps(&self) -> [Option<usize>; N_WALKS] {
        self.last_sweeps
    }
}

/// Template regularization from the domain (Eq. 21–22): λ·P_D(t),
/// λ·R_D(t), and λ·R*_D(t) per template, zero where the domain is silent.
fn template_regs(
    templates: &[Template],
    aspect: AspectId,
    domain: Option<&DomainModel>,
    cfg: &L2qConfig,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut treg_p = vec![0.0; templates.len()];
    let mut treg_r = vec![0.0; templates.len()];
    let mut treg_star = vec![0.0; templates.len()];
    if let Some(dm) = domain {
        for (i, t) in templates.iter().enumerate() {
            if let Some(u) = dm.template_utility(aspect, t) {
                treg_p[i] = cfg.lambda * u.precision;
                treg_r[i] = cfg.lambda * u.recall;
            }
            if let Some(rs) = dm.template_recall_star(t) {
                treg_star[i] = cfg.lambda * rs;
            }
        }
    }
    (treg_p, treg_r, treg_star)
}

/// Query scores of the three walks a context-aware selection needs.
#[derive(Clone, Debug)]
pub struct ContextWalks {
    /// `R_E(q)` per candidate.
    pub recall: Vec<f64>,
    /// `R^(Ỹ)_E(q)` per candidate.
    pub recall_gathered: Vec<f64>,
    /// `R^(Y*)_E(q)` per candidate.
    pub recall_all: Vec<f64>,
}

/// A mid-solve snapshot of the three context walks, handed to the
/// certification callback of [`EntityPhase::context_walks_certified`]
/// after every fused sweep.
pub struct ContextProbe<'a> {
    /// Current (truncated) query iterate of the `R_E` walk.
    pub recall: &'a [f64],
    /// Current iterate of the `R^(Ỹ)_E` walk.
    pub recall_gathered: &'a [f64],
    /// Current iterate of the `R^(Y*)_E` walk.
    pub recall_all: &'a [f64],
    /// Certified max-per-query distance of each iterate from its true
    /// fixpoint, indexed `[recall, recall_gathered, recall_all]`
    /// (`INFINITY` while uncertifiable).
    pub tails: [f64; 3],
    /// Scalar coefficients of each walk's per-query tail refinement
    /// (see [`ContextProbe::qtail`]); `None` when a walk's refinement
    /// doesn't apply and the block tail stands for every query.
    qtail_coeffs: [Option<(f64, f64)>; 3],
    /// Per-candidate maximum incoming coefficient from the page /
    /// template side (shared by all three walks — same graph).
    mx_page_in: &'a [f64],
    mx_tmpl_in: &'a [f64],
    /// Static per-query upper bounds on each walk's true fixpoint, same
    /// indexing as `tails`.
    pub bounds: [&'a [f64]; 3],
}

impl ContextProbe<'_> {
    /// Certified distance of candidate `q`'s walk-`w` iterate from its
    /// true fixpoint — the per-candidate refinement of `tails[w]`
    /// (always ≤ it), in O(1).
    pub fn qtail(&self, w: usize, q: usize) -> f64 {
        match self.qtail_coeffs[w] {
            Some((a, b)) => (a * self.mx_page_in[q] + b * self.mx_tmpl_in[q]).min(self.tails[w]),
            None => self.tails[w],
        }
    }
}

/// A frozen entity graph ready to solve.
pub struct EntityPhase<'a> {
    cfg: &'a L2qConfig,
    aspect: AspectId,
    pages: Vec<PageId>,
    relevant: Vec<bool>,
    candidates: Vec<Query>,
    templates: Vec<Template>,
    graph: ReinforcementGraph,
    /// λ·P_D(t), λ·R_D(t) per template (0 where the domain has no utility).
    template_reg: (Vec<f64>, Vec<f64>),
    /// λ·R*_D(t) per template — domain knowledge for the Y*-walk, so the
    /// collective-precision denominator is estimated with the same
    /// machinery as its numerator.
    template_reg_star: Vec<f64>,
    /// Per-walk warm-start inits mapped from the previous step's
    /// fixpoints (populated by [`EntityPhase::build_incremental`]).
    warm: [Option<WarmInit>; N_WALKS],
    /// Graph-constant half of the static bound computation, built on
    /// first certified walk — the unpruned path never pays for it.
    bounds_ctx: OnceLock<StaticBoundsContext>,
}

impl<'a> EntityPhase<'a> {
    /// Build the entity graph from scratch.
    ///
    /// `pages` are the current result pages PE (deduplicated, in gathering
    /// order); `candidates` the query pool QE (the caller decides whether
    /// frequent domain queries are included — that is what distinguishes
    /// the domain-aware selectors from the Sect. III ablations). When
    /// `domain` is `None` (or `use_templates` is false via an empty
    /// candidate template set) the graph degenerates to the paper's
    /// template-free Sect. III model.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's Eq. 20 inputs
    pub fn build(
        corpus: &Corpus,
        aspect: AspectId,
        pages: &[PageId],
        oracle: &RelevanceOracle,
        candidates: Vec<Query>,
        domain: Option<&DomainModel>,
        use_templates: bool,
        cfg: &'a L2qConfig,
    ) -> Self {
        // Lean one-shot assembly: no cache bookkeeping, no warm-start
        // remapping — but the same insertion order as the incremental
        // path (candidates in pool order, each candidate's pages
        // ascending, templates in first-occurrence order), so the two
        // builds are bit-identical. `incremental_build_matches_cold_build_bitwise`
        // holds the paths together.
        let n_pages = pages.len();
        let relevant: Vec<bool> = pages
            .iter()
            .map(|&p| oracle.is_relevant(aspect, p))
            .collect();
        let bows: Vec<&Bow> = pages.iter().map(|&p| corpus.page(p).bow()).collect();

        let mut templates: Vec<Template> = Vec::new();
        let mut template_index: FxHashMap<Template, u32> = FxHashMap::default();
        let mut qt_edges: Vec<(u32, u32)> = Vec::new();
        let mut pq: Vec<u32> = Vec::new();
        let mut pq_off: Vec<usize> = Vec::with_capacity(candidates.len() + 1);
        pq_off.push(0);
        for (qi, q) in candidates.iter().enumerate() {
            let qbow = Bow::from_words(q.words());
            for (pi, bow) in bows.iter().enumerate() {
                if bow.contains_all(&qbow) {
                    pq.push(pi as u32);
                }
            }
            pq_off.push(pq.len());
            if use_templates {
                for t in templates_of(q, corpus, cfg.template_mode) {
                    let ti = *template_index.entry(t.clone()).or_insert_with(|| {
                        templates.push(t);
                        (templates.len() - 1) as u32
                    });
                    qt_edges.push((qi as u32, ti));
                }
            }
        }

        let mut builder = GraphBuilder::new(n_pages, candidates.len(), templates.len());
        builder.reserve(pq.len(), qt_edges.len());
        for qi in 0..candidates.len() {
            for &pi in &pq[pq_off[qi]..pq_off[qi + 1]] {
                builder.page_query(pi, qi as u32, 1.0);
            }
        }
        for &(q, t) in &qt_edges {
            builder.query_template(q, t, 1.0);
        }
        let graph = builder.build();

        let (treg_p, treg_r, treg_star) = template_regs(&templates, aspect, domain, cfg);

        Self {
            cfg,
            aspect,
            pages: pages.to_vec(),
            relevant,
            candidates,
            templates,
            graph,
            template_reg: (treg_p, treg_r),
            template_reg_star: treg_star,
            warm: [None, None, None, None],
            bounds_ctx: OnceLock::new(),
        }
    }

    /// Build the entity graph, diffing against `state` from the previous
    /// step: only new pages × all candidates and new candidates × all
    /// pages are containment-tested, and template enumeration runs once
    /// per distinct candidate. The resulting graph — and every utility
    /// solved on it — is bit-identical to [`EntityPhase::build`] on the
    /// same inputs.
    ///
    /// A state that cannot be reused (different aspect or template mode,
    /// or a page list the cached one is not a prefix of) is reset and the
    /// build falls back to a full one, counted by
    /// `entity_phase_rebuilds_total`.
    #[allow(clippy::too_many_arguments)] // the Eq. 20 inputs plus the cache
    pub fn build_incremental(
        corpus: &Corpus,
        aspect: AspectId,
        pages: &[PageId],
        oracle: &RelevanceOracle,
        candidates: Vec<Query>,
        domain: Option<&DomainModel>,
        use_templates: bool,
        cfg: &'a L2qConfig,
        state: &mut EntityPhaseState,
    ) -> Self {
        let m = phase_metrics();
        let reusable = state.generation > 0
            && state.aspect == Some(aspect)
            && state.template_mode == Some(cfg.template_mode)
            && pages.len() >= state.pages.len()
            && pages[..state.pages.len()] == state.pages[..];
        if reusable {
            m.reuses.inc();
        } else {
            *state = EntityPhaseState::new();
            state.aspect = Some(aspect);
            state.template_mode = Some(cfg.template_mode);
            m.rebuilds.inc();
        }

        // Extend the diffed page prefix (and its relevance labels) with
        // this step's new pages.
        for &p in &pages[state.pages.len()..] {
            state.relevant.push(oracle.is_relevant(aspect, p));
            state.pages.push(p);
        }
        let n_pages = pages.len();
        let bows: Vec<&Bow> = pages.iter().map(|&p| corpus.page(p).bow()).collect();

        let prev_gen = state.generation;
        let new_gen = prev_gen + 1;

        // Pass 1 — cache update: containment-test only untested
        // (candidate, page) combinations, enumerate templates once per
        // distinct candidate, and record each candidate's previous pool
        // index for warm-start remapping.
        let mut prev_query_of: Vec<Option<u32>> = Vec::with_capacity(candidates.len());
        let mut templates: Vec<Template> = Vec::new();
        let mut template_index: FxHashMap<Template, u32> = FxHashMap::default();
        let mut qt_edges: Vec<(u32, u32)> = Vec::new();
        let mut n_pq_edges = 0usize;
        for (qi, q) in candidates.iter().enumerate() {
            if !state.queries.contains_key(q) {
                state.queries.insert(
                    q.clone(),
                    QueryCacheEntry {
                        bow: Bow::from_words(q.words()),
                        pages: Vec::new(),
                        tested: 0,
                        templates: None,
                        idx: 0,
                        idx_gen: 0,
                    },
                );
            }
            let entry = state.queries.get_mut(q).expect("inserted above");
            prev_query_of.push((prev_gen > 0 && entry.idx_gen == prev_gen).then_some(entry.idx));
            entry.idx = qi as u32;
            entry.idx_gen = new_gen;
            for (pi, bow) in bows.iter().enumerate().skip(entry.tested) {
                if bow.contains_all(&entry.bow) {
                    entry.pages.push(pi as u32);
                }
            }
            entry.tested = n_pages;
            n_pq_edges += entry.pages.len();
            if use_templates {
                let ts = entry
                    .templates
                    .get_or_insert_with(|| templates_of(q, corpus, cfg.template_mode));
                for t in ts.iter() {
                    let ti = *template_index.entry(t.clone()).or_insert_with(|| {
                        templates.push(t.clone());
                        (templates.len() - 1) as u32
                    });
                    qt_edges.push((qi as u32, ti));
                }
            }
        }

        // Pass 2 — graph assembly: replay the cached edges in exactly the
        // cold build's insertion order (candidates in pool order, each
        // candidate's pages ascending) so solver float summation is
        // bit-identical to a from-scratch build.
        let mut builder = GraphBuilder::new(n_pages, candidates.len(), templates.len());
        builder.reserve(n_pq_edges, qt_edges.len());
        for (qi, q) in candidates.iter().enumerate() {
            for &pi in &state.queries[q].pages {
                builder.page_query(pi, qi as u32, 1.0);
            }
        }
        for &(q, t) in &qt_edges {
            builder.query_template(q, t, 1.0);
        }
        let graph = builder.build();

        let (treg_p, treg_r, treg_star) = template_regs(&templates, aspect, domain, cfg);

        // Map the previous step's fixpoints onto the new vertex set:
        // pages are a stable prefix, queries map via their previous pool
        // index, templates via the previous template index. Vertices new
        // to this build stay `None` and cold-start at their
        // regularization.
        let mut warm: [Option<WarmInit>; N_WALKS] = [None, None, None, None];
        if cfg.warm_start && prev_gen > 0 {
            for (slot, fix) in state.warm.iter().enumerate() {
                let Some(fix) = fix else { continue };
                if fix.generation != prev_gen {
                    continue;
                }
                warm[slot] = Some(WarmInit {
                    pages: fix.u.pages.clone(),
                    queries: prev_query_of
                        .iter()
                        .map(|p| p.map(|j| fix.u.queries[j as usize]))
                        .collect(),
                    templates: templates
                        .iter()
                        .map(|t| {
                            state
                                .prev_template_index
                                .get(t)
                                .map(|&j| fix.u.templates[j as usize])
                        })
                        .collect(),
                });
            }
        }
        state.prev_template_index = template_index;
        state.generation = new_gen;

        Self {
            cfg,
            aspect,
            pages: pages.to_vec(),
            relevant: state.relevant.clone(),
            candidates,
            templates,
            graph,
            template_reg: (treg_p, treg_r),
            template_reg_star: treg_star,
            warm,
            bounds_ctx: OnceLock::new(),
        }
    }

    /// The candidate queries (vertex order of all per-query outputs).
    pub fn candidates(&self) -> &[Query] {
        &self.candidates
    }

    /// The pages PE of the graph.
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Y over PE.
    pub fn relevant(&self) -> &[bool] {
        &self.relevant
    }

    /// The aspect being harvested.
    pub fn aspect(&self) -> AspectId {
        self.aspect
    }

    /// Templates in the graph.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    /// Whether each candidate has at least one edge (page containment or
    /// template). Unconnected candidates carry no evidence at all; the
    /// context-aware selector must skip them — their collective scores
    /// would be the meaningless "status quo" ratio.
    pub fn connected(&self) -> Vec<bool> {
        (0..self.candidates.len())
            .map(|q| self.graph.query_page_deg[q] > 0.0 || self.graph.query_template_deg[q] > 0.0)
            .collect()
    }

    /// Graph statistics `(pages, queries, templates, edges)`.
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (
            self.graph.n_pages(),
            self.graph.n_queries(),
            self.graph.n_templates(),
            self.graph.n_edges(),
        )
    }

    /// The (kind, regularization) pair of one walk.
    fn reg_for(&self, walk: Walk) -> (UtilityKind, Regularization) {
        match walk {
            Walk::Precision => {
                let mut reg = Regularization::precision_from_relevance(&self.graph, &self.relevant);
                reg.templates.clone_from(&self.template_reg.0);
                (UtilityKind::Precision, reg)
            }
            Walk::Recall => {
                let mut reg = Regularization::recall_from_relevance(&self.graph, &self.relevant);
                reg.templates.clone_from(&self.template_reg.1);
                (UtilityKind::Recall, reg)
            }
            Walk::RecallGathered => (
                UtilityKind::Recall,
                Regularization::recall_from_relevance(&self.graph, &self.relevant),
            ),
            Walk::RecallAll => {
                let all = vec![true; self.pages.len()];
                let mut reg = Regularization::recall_from_relevance(&self.graph, &all);
                reg.templates.clone_from(&self.template_reg_star);
                (UtilityKind::Recall, reg)
            }
        }
    }

    /// Materialize a walk's warm-start vector: previous values where the
    /// vertex existed last step, the regularization (= cold init) where
    /// it did not.
    fn warm_vector(&self, walk: Walk, reg: &Regularization) -> Option<Utilities> {
        let w = self.warm[walk as usize].as_ref()?;
        let mut u = Utilities {
            pages: reg.pages.clone(),
            queries: reg.queries.clone(),
            templates: reg.templates.clone(),
        };
        u.pages[..w.pages.len()].copy_from_slice(&w.pages);
        for (dst, src) in u.queries.iter_mut().zip(&w.queries) {
            if let Some(v) = src {
                *dst = *v;
            }
        }
        for (dst, src) in u.templates.iter_mut().zip(&w.templates) {
            if let Some(v) = src {
                *dst = *v;
            }
        }
        Some(u)
    }

    /// Run one walk to its fixpoint, warm-started when an init is
    /// available. Returns `(fixpoint, sweeps, warm_started)`.
    fn run_walk(&self, walk: Walk) -> (Utilities, usize, bool) {
        let (kind, reg) = self.reg_for(walk);
        let warm = self.warm_vector(walk, &reg);
        let warmed = warm.is_some();
        let (u, sweeps) = solve_detailed(
            &self.graph,
            kind,
            &reg,
            &self.cfg.walk,
            Scheme::Jacobi,
            warm,
        );
        (u, sweeps, warmed)
    }

    /// Fold a solved walk back into the cross-step state: remember the
    /// fixpoint for next step's warm start and record sweeps saved
    /// against this session's cold baseline.
    fn note_solved(
        &self,
        state: &mut EntityPhaseState,
        walk: Walk,
        u: &Utilities,
        sweeps: usize,
        warmed: bool,
    ) {
        let slot = walk as usize;
        state.last_sweeps[slot] = Some(sweeps);
        match state.cold_sweeps[slot] {
            None => state.cold_sweeps[slot] = Some(sweeps),
            Some(cold) if warmed => {
                phase_metrics()
                    .sweeps_saved
                    .record(cold.saturating_sub(sweeps) as f64);
            }
            Some(_) => {}
        }
        state.warm[slot] = Some(WarmFixpoint {
            generation: state.generation,
            u: u.clone(),
        });
    }

    /// Run one walk, optionally threading the cross-step state.
    fn walk_with(&self, walk: Walk, state: Option<&mut EntityPhaseState>) -> Vec<f64> {
        let (u, sweeps, warmed) = self.run_walk(walk);
        if let Some(st) = state {
            self.note_solved(st, walk, &u, sweeps, warmed);
        }
        u.queries
    }

    /// `P_E(q)` per candidate — precision walk with page relevance and
    /// domain-template regularization.
    pub fn precision(&self) -> Vec<f64> {
        self.precision_with(None)
    }

    /// [`EntityPhase::precision`], saving the fixpoint into `state` for
    /// next step's warm start.
    pub fn precision_with(&self, state: Option<&mut EntityPhaseState>) -> Vec<f64> {
        self.walk_with(Walk::Precision, state)
    }

    /// `R_E(q)` per candidate — recall walk with page relevance and
    /// domain-template regularization.
    pub fn recall(&self) -> Vec<f64> {
        self.recall_with(None)
    }

    /// [`EntityPhase::recall`], saving the fixpoint into `state` for next
    /// step's warm start.
    pub fn recall_with(&self, state: Option<&mut EntityPhaseState>) -> Vec<f64> {
        self.walk_with(Walk::Recall, state)
    }

    /// `R^(Ỹ)_E(q)` per candidate — recall walk regularized on the
    /// relevant *gathered* pages only (no template regularization).
    pub fn recall_gathered(&self) -> Vec<f64> {
        self.walk_with(Walk::RecallGathered, None)
    }

    /// `R^(Y*)_E(q)` per candidate — recall walk where *every* page is
    /// relevant, with the Y*-side domain-template regularization
    /// (λ·R*_D(t)) so numerator and denominator of collective precision
    /// see symmetric domain knowledge.
    pub fn recall_all(&self) -> Vec<f64> {
        self.walk_with(Walk::RecallAll, None)
    }

    /// The three walks a context-aware selection needs (R, R^(Ỹ),
    /// R^(Y*)). They share the graph read-only and are independent, so
    /// `parallel` runs them concurrently: on scoped threads when the
    /// machine has more than one core, or — on a single core, when the
    /// graph is too big to sit in cache — as one fused traversal that
    /// updates all three systems per edge load. Cache-resident graphs on
    /// a single core fall back to the serial path, where the fused
    /// kernel's per-edge multi-system loop costs more than the edge
    /// reloads it saves. Each walk's own Jacobi iteration is untouched
    /// in every mode, so the results are bit-identical to the serial
    /// path regardless of which mode runs.
    pub fn context_walks(
        &self,
        state: Option<&mut EntityPhaseState>,
        parallel: bool,
    ) -> ContextWalks {
        // ~12 bytes/edge per CSR direction: past ~256k edges a sweep's
        // working set outgrows typical L2 and traversal turns
        // memory-bound — the regime where fusing pays.
        const FUSED_EDGE_THRESHOLD: usize = 256 * 1024;
        let mode = if !parallel {
            WalkMode::Serial
        } else if std::thread::available_parallelism().is_ok_and(|n| n.get() > 1) {
            WalkMode::Threads
        } else if self.graph.n_edges() > FUSED_EDGE_THRESHOLD {
            WalkMode::Fused
        } else {
            WalkMode::Serial
        };
        self.context_walks_mode(state, mode)
    }

    fn context_walks_mode(
        &self,
        state: Option<&mut EntityPhaseState>,
        mode: WalkMode,
    ) -> ContextWalks {
        const WALKS: [Walk; 3] = [Walk::Recall, Walk::RecallGathered, Walk::RecallAll];
        let mut results: Vec<(Utilities, usize, bool)> = match mode {
            WalkMode::Threads => crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = WALKS
                    .iter()
                    .map(|&w| scope.spawn(move |_| self.run_walk(w)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("walk worker panicked"))
                    .collect()
            })
            .expect("crossbeam scope"),
            WalkMode::Fused => {
                // All three context walks are Recall-kind on the shared
                // graph, so they qualify for the fused solver.
                let regs: Vec<Regularization> = WALKS
                    .iter()
                    .map(|&w| {
                        let (kind, reg) = self.reg_for(w);
                        debug_assert_eq!(kind, UtilityKind::Recall);
                        reg
                    })
                    .collect();
                let warms: Vec<Option<Utilities>> = WALKS
                    .iter()
                    .zip(&regs)
                    .map(|(&w, reg)| self.warm_vector(w, reg))
                    .collect();
                let warmed: Vec<bool> = warms.iter().map(|w| w.is_some()).collect();
                solve_fused_detailed(
                    &self.graph,
                    UtilityKind::Recall,
                    &regs,
                    &self.cfg.walk,
                    warms,
                )
                .into_iter()
                .zip(warmed)
                .map(|((u, sweeps), warm)| (u, sweeps, warm))
                .collect()
            }
            WalkMode::Serial => WALKS.iter().map(|&w| self.run_walk(w)).collect(),
        };
        if let Some(st) = state {
            for (&w, (u, sweeps, warmed)) in WALKS.iter().zip(&results) {
                self.note_solved(st, w, u, *sweeps, *warmed);
            }
        }
        let recall_all = results.pop().expect("three walks").0.queries;
        let recall_gathered = results.pop().expect("three walks").0.queries;
        let recall = results.pop().expect("three walks").0.queries;
        ContextWalks {
            recall,
            recall_gathered,
            recall_all,
        }
    }

    /// [`EntityPhase::context_walks`] with a certified early exit: after
    /// every fused sweep, `certified` inspects the truncated iterates and
    /// their error bounds (see [`ContextProbe`]) and returns `true` to
    /// stop the solve early. Returns the walks plus whether the solve was
    /// truncated.
    ///
    /// A callback that never certifies makes this identical — bit for
    /// bit, including sweep counts — to the fused/serial full solve (all
    /// walk modes agree bitwise). A callback that certifies trades the
    /// remaining sweeps for query scores that are provably within
    /// `tails[w]` of the full solve's.
    pub fn context_walks_certified(
        &self,
        state: Option<&mut EntityPhaseState>,
        mut certified: impl FnMut(&ContextProbe<'_>) -> bool,
    ) -> (ContextWalks, bool) {
        const WALKS: [Walk; 3] = [Walk::Recall, Walk::RecallGathered, Walk::RecallAll];
        let regs: Vec<Regularization> = WALKS
            .iter()
            .map(|&w| {
                let (kind, reg) = self.reg_for(w);
                debug_assert_eq!(kind, UtilityKind::Recall);
                // The grouping in `certifiable_groups` relies on the
                // query side carrying no regularization.
                debug_assert!(reg.queries.iter().all(|&x| x == 0.0));
                reg
            })
            .collect();
        let warms: Vec<Option<Utilities>> = WALKS
            .iter()
            .zip(&regs)
            .map(|(&w, reg)| self.warm_vector(w, reg))
            .collect();
        let warmed: Vec<bool> = warms.iter().map(|w| w.is_some()).collect();
        // The in-strength half of the bound is a graph constant: scan
        // the edges once per phase (lazily, so the unpruned path never
        // pays) and derive each walk's bounds from its regularization.
        let ctx = self.bounds_ctx.get_or_init(|| {
            StaticBoundsContext::new(&self.graph, UtilityKind::Recall, &self.cfg.walk)
        });
        let bounds: Vec<Vec<f64>> = regs.iter().map(|reg| ctx.query_upper_bounds(reg)).collect();
        let mut solver = FusedTruncatedSolver::new(
            &self.graph,
            UtilityKind::Recall,
            regs,
            &self.cfg.walk,
            warms,
        );
        let mut early = false;
        while solver.sweep() {
            if solver.all_converged() {
                break;
            }
            let (mx_page_in, mx_tmpl_in) = solver.max_in_coeffs();
            let probe = ContextProbe {
                recall: solver.queries(0),
                recall_gathered: solver.queries(1),
                recall_all: solver.queries(2),
                tails: [solver.tail(0), solver.tail(1), solver.tail(2)],
                qtail_coeffs: [
                    solver.query_tail_coeffs(0),
                    solver.query_tail_coeffs(1),
                    solver.query_tail_coeffs(2),
                ],
                mx_page_in,
                mx_tmpl_in,
                bounds: [&bounds[0], &bounds[1], &bounds[2]],
            };
            if certified(&probe) {
                early = true;
                break;
            }
        }
        let results = solver.finish();
        if let Some(st) = state {
            for ((&w, &warm), (u, sweeps)) in WALKS.iter().zip(&warmed).zip(&results) {
                self.note_solved(st, w, u, *sweeps, warm);
            }
        }
        let mut it = results.into_iter();
        let recall = it.next().expect("three walks").0.queries;
        let recall_gathered = it.next().expect("three walks").0.queries;
        let recall_all = it.next().expect("three walks").0.queries;
        (
            ContextWalks {
                recall,
                recall_gathered,
                recall_all,
            },
            early,
        )
    }

    /// Partition the *connected* candidates into classes whose context
    /// walk iterates are provably bitwise-identical at every sweep: same
    /// incident edge targets with the same sender-normalized
    /// coefficients (compared exactly, by bits) and the same warm-start
    /// init value in all three walks. By induction over Jacobi sweeps,
    /// two such candidates receive the same floating-point update
    /// forever — so one representative's scores and bounds stand for the
    /// whole class, and a selection tie inside a class resolves the same
    /// way in the pruned and unpruned paths.
    ///
    /// Classes are sorted by their lowest member; members ascend.
    pub fn certifiable_groups(&self) -> Vec<Vec<usize>> {
        let connected = self.connected();
        let mut classes: FxHashMap<Vec<u64>, Vec<usize>> = FxHashMap::default();
        for (q, &conn) in connected.iter().enumerate() {
            if !conn {
                continue;
            }
            let pe = self.graph.query_pages(q);
            let te = self.graph.query_templates(q);
            let mut key: Vec<u64> = Vec::with_capacity(2 * (pe.len() + te.len()) + 5);
            key.push(pe.len() as u64);
            for (e, &c) in pe.iter().zip(self.graph.query_pages_nrm(q)) {
                key.push(e.to as u64);
                key.push(c.to_bits());
            }
            key.push(te.len() as u64);
            for (e, &c) in te.iter().zip(self.graph.query_templates_nrm(q)) {
                key.push(e.to as u64);
                key.push(c.to_bits());
            }
            for walk in [Walk::Recall, Walk::RecallGathered, Walk::RecallAll] {
                // Init at the warm value where one exists, else at the
                // regularization — which is 0 on the query side of every
                // context walk (asserted in the certified solve).
                let init = self.warm[walk as usize]
                    .as_ref()
                    .and_then(|w| w.queries.get(q).copied().flatten())
                    .unwrap_or(0.0);
                key.push(init.to_bits());
            }
            classes.entry(key).or_default().push(q);
        }
        let mut groups: Vec<Vec<usize>> = classes.into_values().collect();
        groups.sort_by_key(|g| g[0]);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{pages_queries, StopwordCache};
    use crate::domain_phase::learn_domain;
    use l2q_corpus::{generate, researchers_domain, CorpusConfig, EntityId};

    fn setup() -> (Corpus, RelevanceOracle) {
        let c = generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap();
        let o = RelevanceOracle::from_truth(&c);
        (c, o)
    }

    fn phase_for(
        corpus: &Corpus,
        _oracle: &RelevanceOracle,
        cfg: &L2qConfig,
        with_domain: Option<&DomainModel>,
    ) -> (Vec<PageId>, Vec<Query>) {
        let e = EntityId(6);
        let pages: Vec<PageId> = corpus.pages_of(e).iter().take(8).map(|p| p.id).collect();
        let mut stops = StopwordCache::new();
        let page_refs: Vec<_> = pages.iter().map(|&p| corpus.page(p)).collect();
        let mut candidates = pages_queries(
            corpus,
            page_refs.iter().copied(),
            cfg.candidates.max_len,
            &mut stops,
        );
        if let Some(dm) = with_domain {
            for q in dm.frequent_queries() {
                candidates.push(q.clone());
            }
            candidates.sort();
            candidates.dedup();
        }
        (pages, candidates)
    }

    fn candidates_for(corpus: &Corpus, pages: &[PageId], cfg: &L2qConfig) -> Vec<Query> {
        let mut stops = StopwordCache::new();
        let page_refs: Vec<_> = pages.iter().map(|&p| corpus.page(p)).collect();
        pages_queries(
            corpus,
            page_refs.iter().copied(),
            cfg.candidates.max_len,
            &mut stops,
        )
    }

    #[test]
    fn phase_builds_and_solves() {
        let (c, o) = setup();
        let cfg = L2qConfig::default();
        let aspect = c.aspect_by_name("RESEARCH").unwrap();
        let (pages, candidates) = phase_for(&c, &o, &cfg, None);
        let phase = EntityPhase::build(&c, aspect, &pages, &o, candidates, None, true, &cfg);
        let (np, nq, nt, ne) = phase.shape();
        assert_eq!(np, pages.len());
        assert!(nq > 50);
        assert!(nt > 0);
        assert!(ne > nq, "each query should touch at least one page");
        let p = phase.precision();
        let r = phase.recall();
        assert_eq!(p.len(), nq);
        assert_eq!(r.len(), nq);
        assert!(p.iter().all(|v| v.is_finite() && *v >= 0.0));
        assert!(r.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn queries_in_relevant_pages_score_higher_precision() {
        let (c, o) = setup();
        let cfg = L2qConfig::default();
        let aspect = c.aspect_by_name("RESEARCH").unwrap();
        let (pages, candidates) = phase_for(&c, &o, &cfg, None);
        let phase = EntityPhase::build(&c, aspect, &pages, &o, candidates, None, true, &cfg);
        let p = phase.precision();

        // Average precision of queries contained only in relevant pages
        // should beat queries contained only in irrelevant pages.
        let mut only_rel = Vec::new();
        let mut only_irr = Vec::new();
        for (qi, q) in phase.candidates().iter().enumerate() {
            let qbow = Bow::from_words(q.words());
            let mut in_rel = false;
            let mut in_irr = false;
            for (pi, &pid) in phase.pages().iter().enumerate() {
                if c.page(pid).bow().contains_all(&qbow) {
                    if phase.relevant()[pi] {
                        in_rel = true;
                    } else {
                        in_irr = true;
                    }
                }
            }
            match (in_rel, in_irr) {
                (true, false) => only_rel.push(p[qi]),
                (false, true) => only_irr.push(p[qi]),
                _ => {}
            }
        }
        assert!(!only_rel.is_empty() && !only_irr.is_empty());
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&only_rel) > avg(&only_irr),
            "relevant-only queries {:.4} must out-score irrelevant-only {:.4}",
            avg(&only_rel),
            avg(&only_irr)
        );
    }

    #[test]
    fn domain_templates_boost_matching_candidates() {
        let (c, o) = setup();
        let cfg = L2qConfig::default();
        let aspect = c.aspect_by_name("RESEARCH").unwrap();
        let domain_entities: Vec<EntityId> = c.entity_ids().take(4).collect();
        let dm = learn_domain(&c, &domain_entities, &o, &cfg);
        let (pages, candidates) = phase_for(&c, &o, &cfg, Some(&dm));

        let with = EntityPhase::build(
            &c,
            aspect,
            &pages,
            &o,
            candidates.clone(),
            Some(&dm),
            true,
            &cfg,
        );
        let without = EntityPhase::build(&c, aspect, &pages, &o, candidates, None, true, &cfg);
        let pw = with.precision();
        let po = without.precision();
        // Domain regularization must change the scores of some candidates.
        let changed = pw
            .iter()
            .zip(&po)
            .filter(|(a, b)| (*a - *b).abs() > 1e-9)
            .count();
        assert!(changed > 0, "domain regularization had no effect");
    }

    #[test]
    fn auxiliary_walks_have_expected_shape() {
        let (c, o) = setup();
        let cfg = L2qConfig::default();
        let aspect = c.aspect_by_name("CONTACT").unwrap();
        let (pages, candidates) = phase_for(&c, &o, &cfg, None);
        let phase = EntityPhase::build(&c, aspect, &pages, &o, candidates, None, true, &cfg);
        let r_all = phase.recall_all();
        let r_gathered = phase.recall_gathered();
        assert_eq!(r_all.len(), phase.candidates().len());
        assert_eq!(r_gathered.len(), phase.candidates().len());
        // Y* puts mass on all pages, so broad queries accumulate at least
        // as much recall as under the aspect-restricted Ỹ on average.
        let sum_all: f64 = r_all.iter().sum();
        let sum_gathered: f64 = r_gathered.iter().sum();
        assert!(sum_all > 0.0 && sum_gathered > 0.0);
    }

    #[test]
    fn disabling_templates_removes_template_vertices() {
        let (c, o) = setup();
        let cfg = L2qConfig::default();
        let aspect = c.aspect_by_name("RESEARCH").unwrap();
        let (pages, candidates) = phase_for(&c, &o, &cfg, None);
        let phase = EntityPhase::build(&c, aspect, &pages, &o, candidates, None, false, &cfg);
        let (_, _, nt, _) = phase.shape();
        assert_eq!(nt, 0);
        assert!(phase.precision().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn empty_pages_is_safe() {
        let (c, o) = setup();
        let cfg = L2qConfig::default();
        let aspect = c.aspect_by_name("RESEARCH").unwrap();
        let phase = EntityPhase::build(&c, aspect, &[], &o, Vec::new(), None, true, &cfg);
        assert!(phase.precision().is_empty());
        assert!(phase.recall().is_empty());
    }

    /// Growing the page set step by step through one persistent state must
    /// reproduce the cold build bit for bit: same shape, same edges, same
    /// solved utilities (graph assembly replays the cold insertion order).
    #[test]
    fn incremental_build_matches_cold_build_bitwise() {
        let (c, o) = setup();
        // Warm starts off: this test isolates the incremental *assembly*;
        // the warm-start path is covered separately (it converges to the
        // same fixpoint within tolerance, not bitwise).
        let cfg = L2qConfig::default().with_warm_start(false);
        let aspect = c.aspect_by_name("RESEARCH").unwrap();
        let all_pages: Vec<PageId> = c.pages_of(EntityId(6)).iter().map(|p| p.id).collect();
        assert!(all_pages.len() >= 6);

        let mut state = EntityPhaseState::new();
        for k in [2usize, 4, 5, all_pages.len().min(8)] {
            let pages = &all_pages[..k];
            let candidates = candidates_for(&c, pages, &cfg);
            let inc = EntityPhase::build_incremental(
                &c,
                aspect,
                pages,
                &o,
                candidates.clone(),
                None,
                true,
                &cfg,
                &mut state,
            );
            let cold = EntityPhase::build(&c, aspect, pages, &o, candidates, None, true, &cfg);
            assert_eq!(inc.shape(), cold.shape(), "shape diverged at k={k}");
            assert_eq!(inc.relevant(), cold.relevant());
            assert_eq!(inc.templates(), cold.templates());
            assert_eq!(inc.connected(), cold.connected());
            // Bitwise equality of every walk.
            assert_eq!(inc.precision(), cold.precision(), "precision at k={k}");
            assert_eq!(inc.recall(), cold.recall(), "recall at k={k}");
            assert_eq!(
                inc.recall_gathered(),
                cold.recall_gathered(),
                "recall_gathered at k={k}"
            );
            assert_eq!(inc.recall_all(), cold.recall_all(), "recall_all at k={k}");
        }
        assert_eq!(state.generation(), 4);
        assert!(state.cached_queries() > 0);
    }

    /// Warm-started solves must land on the cold fixpoint (same graph,
    /// same regularization, unique fixpoint) within solver tolerance.
    #[test]
    fn warm_started_walks_converge_to_the_cold_fixpoint() {
        let (c, o) = setup();
        let cfg = L2qConfig::default();
        assert!(cfg.warm_start, "warm starts are the default");
        let aspect = c.aspect_by_name("RESEARCH").unwrap();
        let all_pages: Vec<PageId> = c.pages_of(EntityId(6)).iter().map(|p| p.id).collect();

        let mut state = EntityPhaseState::new();
        for k in [3usize, 5, all_pages.len().min(8)] {
            let pages = &all_pages[..k];
            let candidates = candidates_for(&c, pages, &cfg);
            let inc = EntityPhase::build_incremental(
                &c,
                aspect,
                pages,
                &o,
                candidates.clone(),
                None,
                true,
                &cfg,
                &mut state,
            );
            let warm_p = inc.precision_with(Some(&mut state));
            let warm_r = inc.recall_with(Some(&mut state));
            let cold = EntityPhase::build(&c, aspect, pages, &o, candidates, None, true, &cfg);
            let cold_p = cold.precision();
            let cold_r = cold.recall();
            for (a, b) in warm_p.iter().zip(&cold_p) {
                assert!((a - b).abs() < 1e-7, "precision drifted: {a} vs {b}");
            }
            for (a, b) in warm_r.iter().zip(&cold_r) {
                assert!((a - b).abs() < 1e-7, "recall drifted: {a} vs {b}");
            }
        }
    }

    /// The concurrent context walks (threads on multi-core, fused
    /// traversal on single-core) are the same solves on the same graph —
    /// results must be bitwise identical to the serial path. Both
    /// concurrent modes are forced explicitly so the test doesn't depend
    /// on the machine's core count.
    #[test]
    fn parallel_context_walks_match_serial_bitwise() {
        let (c, o) = setup();
        let cfg = L2qConfig::default();
        let aspect = c.aspect_by_name("RESEARCH").unwrap();
        let (pages, candidates) = phase_for(&c, &o, &cfg, None);
        let phase = EntityPhase::build(&c, aspect, &pages, &o, candidates, None, true, &cfg);
        let serial = phase.context_walks(None, false);
        for mode in [WalkMode::Threads, WalkMode::Fused] {
            let par = phase.context_walks_mode(None, mode);
            assert_eq!(serial.recall, par.recall, "{mode:?}");
            assert_eq!(serial.recall_gathered, par.recall_gathered, "{mode:?}");
            assert_eq!(serial.recall_all, par.recall_all, "{mode:?}");
        }
        // And they match the single-walk entry points bitwise.
        assert_eq!(serial.recall, phase.recall());
        assert_eq!(serial.recall_gathered, phase.recall_gathered());
        assert_eq!(serial.recall_all, phase.recall_all());
    }

    /// Warm-started fused walks must carry the cross-step state exactly
    /// like the serial warm path: same utilities, same recorded sweeps.
    #[test]
    fn fused_context_walks_warm_start_like_serial() {
        let (c, o) = setup();
        let cfg = L2qConfig::default();
        let aspect = c.aspect_by_name("RESEARCH").unwrap();
        let all_pages: Vec<PageId> = c.pages_of(EntityId(6)).iter().map(|p| p.id).collect();

        let mut st_serial = EntityPhaseState::new();
        let mut st_fused = EntityPhaseState::new();
        for k in [3, all_pages.len()] {
            let pages = &all_pages[..k];
            let candidates = candidates_for(&c, pages, &cfg);
            let serial = EntityPhase::build_incremental(
                &c,
                aspect,
                pages,
                &o,
                candidates.clone(),
                None,
                true,
                &cfg,
                &mut st_serial,
            )
            .context_walks_mode(Some(&mut st_serial), WalkMode::Serial);
            let fused = EntityPhase::build_incremental(
                &c,
                aspect,
                pages,
                &o,
                candidates,
                None,
                true,
                &cfg,
                &mut st_fused,
            )
            .context_walks_mode(Some(&mut st_fused), WalkMode::Fused);
            assert_eq!(serial.recall, fused.recall);
            assert_eq!(serial.recall_gathered, fused.recall_gathered);
            assert_eq!(serial.recall_all, fused.recall_all);
            assert_eq!(st_serial.last_sweeps(), st_fused.last_sweeps());
        }
    }

    /// A state whose cached pages are not a prefix of the new page list
    /// must reset and still produce the correct (cold-equal) result.
    #[test]
    fn non_prefix_pages_invalidate_the_state() {
        let (c, o) = setup();
        let cfg = L2qConfig::default();
        let aspect = c.aspect_by_name("RESEARCH").unwrap();
        let all_pages: Vec<PageId> = c.pages_of(EntityId(6)).iter().map(|p| p.id).collect();

        let mut state = EntityPhaseState::new();
        let first = &all_pages[..4];
        let _ = EntityPhase::build_incremental(
            &c,
            aspect,
            first,
            &o,
            candidates_for(&c, first, &cfg),
            None,
            true,
            &cfg,
            &mut state,
        );
        assert_eq!(state.generation(), 1);

        // Reversed pages: cached list is no longer a prefix.
        let reversed: Vec<PageId> = all_pages[..4].iter().rev().copied().collect();
        let candidates = candidates_for(&c, &reversed, &cfg);
        let rebuilds_before = phase_metrics().rebuilds.get();
        let inc = EntityPhase::build_incremental(
            &c,
            aspect,
            &reversed,
            &o,
            candidates.clone(),
            None,
            true,
            &cfg,
            &mut state,
        );
        assert!(phase_metrics().rebuilds.get() > rebuilds_before);
        assert_eq!(state.generation(), 1, "reset state restarts generations");
        let cold = EntityPhase::build(&c, aspect, &reversed, &o, candidates, None, true, &cfg);
        assert_eq!(inc.precision(), cold.precision());
    }

    /// Changing the aspect mid-state must also invalidate.
    #[test]
    fn aspect_change_invalidates_the_state() {
        let (c, o) = setup();
        let cfg = L2qConfig::default();
        let research = c.aspect_by_name("RESEARCH").unwrap();
        let contact = c.aspect_by_name("CONTACT").unwrap();
        let pages: Vec<PageId> = c
            .pages_of(EntityId(6))
            .iter()
            .take(5)
            .map(|p| p.id)
            .collect();
        let candidates = candidates_for(&c, &pages, &cfg);

        let mut state = EntityPhaseState::new();
        let _ = EntityPhase::build_incremental(
            &c,
            research,
            &pages,
            &o,
            candidates.clone(),
            None,
            true,
            &cfg,
            &mut state,
        );
        let inc = EntityPhase::build_incremental(
            &c,
            contact,
            &pages,
            &o,
            candidates.clone(),
            None,
            true,
            &cfg,
            &mut state,
        );
        let cold = EntityPhase::build(&c, contact, &pages, &o, candidates, None, true, &cfg);
        assert_eq!(inc.precision(), cold.precision());
        assert_eq!(inc.relevant(), cold.relevant());
    }

    /// Reuse/rebuild counters move as documented.
    #[test]
    fn phase_metrics_count_reuses_and_rebuilds() {
        let (c, o) = setup();
        let cfg = L2qConfig::default().with_warm_start(false);
        let aspect = c.aspect_by_name("RESEARCH").unwrap();
        let all_pages: Vec<PageId> = c.pages_of(EntityId(6)).iter().map(|p| p.id).collect();
        let m = phase_metrics();
        let (reuses0, rebuilds0) = (m.reuses.get(), m.rebuilds.get());

        let mut state = EntityPhaseState::new();
        for k in [3usize, 4, 5] {
            let pages = &all_pages[..k.min(all_pages.len())];
            let _ = EntityPhase::build_incremental(
                &c,
                aspect,
                pages,
                &o,
                candidates_for(&c, pages, &cfg),
                None,
                true,
                &cfg,
                &mut state,
            );
        }
        // One fresh build + two incremental reuses (the registry is
        // process-global, so assert growth by at least this test's share).
        assert!(m.rebuilds.get() > rebuilds0);
        assert!(m.reuses.get() >= reuses0 + 2);
    }

    /// A certification callback that never fires makes the certified
    /// solve bit-identical to the plain context walks; one that fires
    /// early truncates within its reported tails.
    #[test]
    fn certified_walks_without_certification_match_context_walks_bitwise() {
        let (c, o) = setup();
        let cfg = L2qConfig::default();
        let aspect = c.aspect_by_name("RESEARCH").unwrap();
        let (pages, candidates) = phase_for(&c, &o, &cfg, None);
        let phase = EntityPhase::build(&c, aspect, &pages, &o, candidates, None, true, &cfg);
        let full = phase.context_walks(None, false);

        let mut probes = 0usize;
        let (walks, early) = phase.context_walks_certified(None, |p| {
            probes += 1;
            assert!(p.tails.iter().all(|t| *t >= 0.0));
            for w in 0..3 {
                let scores = [p.recall, p.recall_gathered, p.recall_all][w];
                for (q, &s) in scores.iter().enumerate() {
                    assert!(p.bounds[w][q] >= 0.0 && s <= p.bounds[w][q] + p.tails[w]);
                    assert!(
                        p.qtail(w, q) >= 0.0 && p.qtail(w, q) <= p.tails[w],
                        "per-query tail must refine the block tail"
                    );
                }
            }
            false
        });
        assert!(!early);
        assert!(probes > 2, "callback must see intermediate sweeps");
        assert_eq!(walks.recall, full.recall);
        assert_eq!(walks.recall_gathered, full.recall_gathered);
        assert_eq!(walks.recall_all, full.recall_all);

        // Truncate once every tail drops below 1e-6: the walks must agree
        // with the full solve to that tolerance.
        let (truncated, early) =
            phase.context_walks_certified(None, |p| p.tails.iter().all(|t| *t <= 1e-6));
        assert!(early, "tails must eventually certify");
        for (a, b) in truncated
            .recall
            .iter()
            .chain(&truncated.recall_gathered)
            .chain(&truncated.recall_all)
            .zip(
                full.recall
                    .iter()
                    .chain(&full.recall_gathered)
                    .chain(&full.recall_all),
            )
        {
            assert!((a - b).abs() <= 2e-6, "truncation drifted: {a} vs {b}");
        }
    }

    /// Candidate classes group only provably identical candidates: the
    /// solved walk scores inside one class are bitwise equal, and every
    /// connected candidate appears in exactly one class.
    #[test]
    fn certifiable_groups_partition_connected_candidates_into_equal_scores() {
        let (c, o) = setup();
        let cfg = L2qConfig::default();
        let aspect = c.aspect_by_name("RESEARCH").unwrap();
        let (pages, candidates) = phase_for(&c, &o, &cfg, None);
        let phase = EntityPhase::build(&c, aspect, &pages, &o, candidates, None, true, &cfg);
        let groups = phase.certifiable_groups();
        let connected = phase.connected();
        let n_connected = connected.iter().filter(|&&x| x).count();
        assert_eq!(groups.iter().map(|g| g.len()).sum::<usize>(), n_connected);
        let mut seen = std::collections::HashSet::new();
        for g in &groups {
            for &q in g {
                assert!(connected[q]);
                assert!(seen.insert(q), "candidate {q} in two classes");
            }
        }
        let walks = phase.context_walks(None, false);
        for g in &groups {
            for &q in &g[1..] {
                assert_eq!(walks.recall[g[0]], walks.recall[q]);
                assert_eq!(walks.recall_gathered[g[0]], walks.recall_gathered[q]);
                assert_eq!(walks.recall_all[g[0]], walks.recall_all[q]);
            }
        }
    }
}
