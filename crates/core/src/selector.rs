//! Query selection: the [`QuerySelector`] trait shared by L2Q and all
//! baselines, and the [`L2qSelector`] family (P, R, P+t, R+t, L2QP, L2QR,
//! L2QBAL — the strategies of the paper's Sect. VI-B/C).

use crate::candidates::StopwordCache;
use crate::config::L2qConfig;
use crate::context::CollectiveState;
use crate::domain_phase::DomainModel;
use crate::entity_phase::{ContextProbe, EntityPhase, EntityPhaseState};
use crate::fxhash::FxHashSet;
use crate::query::Query;
use l2q_aspect::RelevanceOracle;
use l2q_corpus::{AspectId, Corpus, EntityId, PageId};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Everything a selector may consult when choosing the next query.
pub struct SelectionInput<'a> {
    /// The corpus.
    pub corpus: &'a Corpus,
    /// Target entity.
    pub entity: EntityId,
    /// Target aspect.
    pub aspect: AspectId,
    /// Current result pages PE, in gathering order (deduplicated).
    pub gathered: &'a [PageId],
    /// Y over `gathered` (classifier-materialized, like the paper).
    pub relevant: &'a [bool],
    /// The context Φ: every query fired so far, seed first.
    pub fired: &'a [Query],
    /// Candidates enumerated from the current pages (fired ones removed).
    pub page_candidates: &'a [Query],
    /// The learned domain model, if the pipeline is domain-aware.
    pub domain: Option<&'a DomainModel>,
    /// The relevance oracle (materialized Y for any page).
    pub oracle: &'a RelevanceOracle,
    /// The search engine. L2Q and the published baselines must NOT fire
    /// candidates through it (utilities are inferred "without actually
    /// firing any candidate query") — it exists for the evaluation's ideal
    /// upper-bound selector, which is explicitly allowed to cheat.
    pub engine: &'a l2q_retrieval::SearchEngine,
    /// Pipeline configuration.
    pub cfg: &'a L2qConfig,
    /// Cross-step entity-phase cache, if the caller carries one (the
    /// harvester does when `cfg.incremental_phase` is set). `None` makes
    /// every selection a from-scratch cold build — same output, slower.
    /// Behind a `Mutex` (locked once per selection, never contended)
    /// so the harvest state holding it stays `Sync`.
    pub phase_state: Option<&'a Mutex<EntityPhaseState>>,
}

/// A query-selection policy (one `select` call per harvest iteration).
///
/// Selectors are `Send` so evaluations can parallelize over entities (the
/// paper's own efficiency suggestion, Sect. VI-C).
pub trait QuerySelector: Send {
    /// Short display name (`L2QP`, `LM`, …).
    fn name(&self) -> String;

    /// Reset per (entity, aspect) harvest run.
    fn reset(&mut self) {}

    /// Choose the next query, or `None` if no candidate is available.
    fn select(&mut self, input: &SelectionInput<'_>) -> Option<Query>;

    /// The collective-recall recursion state, for selectors that carry one
    /// (checkpointing hook; context-free selectors have none).
    fn collective_state(&self) -> Option<CollectiveState> {
        None
    }

    /// Restore a previously exported collective state (checkpoint
    /// restore). Context-free selectors ignore it.
    fn restore_collective(&mut self, _state: CollectiveState) {}
}

/// Lock the cross-step phase state, recovering a poisoned mutex instead
/// of propagating the panic (the seed behavior of
/// `lock().expect("phase state lock poisoned")`): the poison is cleared
/// and the cache reset to an empty state — always valid, merely making
/// the next build a cold one — so one panicked step cannot wedge every
/// later selection on that session.
fn lock_recover(m: &Mutex<EntityPhaseState>) -> MutexGuard<'_, EntityPhaseState> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            m.clear_poison();
            let mut guard = poisoned.into_inner();
            *guard = EntityPhaseState::new();
            guard
        }
    }
}

/// Resolved-once handles for the bound-and-prune selection metrics.
struct SelectionMetrics {
    pruned: Arc<l2q_obs::Counter>,
    exact: Arc<l2q_obs::Counter>,
    fallbacks: Arc<l2q_obs::Counter>,
    active_fraction: Arc<l2q_obs::Histogram>,
}

fn selection_metrics() -> &'static SelectionMetrics {
    static M: OnceLock<SelectionMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let reg = l2q_obs::global();
        SelectionMetrics {
            pruned: reg.counter("selection_candidates_pruned_total"),
            exact: reg.counter("selection_exact_solves_total"),
            fallbacks: reg.counter("selection_bound_fallbacks_total"),
            active_fraction: reg.histogram_with_bounds(
                "selection_active_set_fraction",
                vec![0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 0.9, 1.0],
            ),
        }
    })
}

/// The winner's per-query walk tails must drop below this before the
/// certifier may stop the solve: the truncated `r/r̃/r*` triple the
/// selector then commits to Φ sits within this distance of the fully
/// converged one. 1e-4 keeps the committed drift two orders of
/// magnitude below the ~1e-2 score gaps that separate distinct
/// candidate classes on either benchmark domain — far too small to
/// flip any later argmax, which the determinism suite's bit-identical
/// fired-sequence checks gate empirically — while letting the solve
/// stop a handful of sweeps after the argmax separates instead of
/// riding the contraction three more decades. (Kills need no such
/// gate: an interval comparison is valid at any tail width.)
const COMMIT_TOL: f64 = 1e-4;

/// Safety margin separating "provably worse" from "too close to call".
/// Covers the residual (≈6·tolerance at the default 1e-9) that even the
/// fully converged scores carry relative to the true fixpoint, so a
/// pruned kill is also valid about the unpruned path's scores.
const CERT_MARGIN: f64 = 1e-8;

/// Field size below which racing every sweep is cheaper than skipping.
const CHEAP_FIELD: usize = 16;

/// Active-set state of one pruned selection: candidate classes (from
/// [`EntityPhase::certifiable_groups`]) race against each other on
/// certified score intervals; a class is killed when its best possible
/// primary score provably trails some class's worst possible one, and
/// the walk solves stop the moment a single class survives.
struct Certifier {
    state: CollectiveState,
    strategy: Strategy,
    groups: Vec<Vec<usize>>,
    alive: Vec<bool>,
    n_alive: usize,
    /// Tail level that triggers the next full interval race while the
    /// field is still wide (halving cadence).
    next_race_tail: f64,
    /// Index into `groups` once certified.
    winner: Option<usize>,
}

impl Certifier {
    fn new(state: CollectiveState, strategy: Strategy, groups: Vec<Vec<usize>>) -> Self {
        let n = groups.len();
        Self {
            state,
            strategy,
            groups,
            alive: vec![true; n],
            n_alive: n,
            next_race_tail: f64::INFINITY,
            winner: None,
        }
    }

    /// Inspect one sweep's probe; `true` ends the solve with a certified
    /// winner. Kills are permanent — they are statements about the true
    /// fixpoint scores, which do not move between sweeps.
    fn check(&mut self, probe: &ContextProbe<'_>) -> bool {
        if self.groups.is_empty() {
            // No connected candidate: the selection returns None either
            // way; let the solve run to convergence (exact fallback).
            return false;
        }
        let tmax = probe.tails.iter().fold(0.0f64, |m, &t| m.max(t));
        if !tmax.is_finite() {
            // Uncertifiable sweep (ρ ≥ 1 or warm-up): every interval
            // would span [0, ub] and nothing can be killed.
            return false;
        }
        // Racing a wide field is O(alive) per sweep; while the field is
        // large, only race when the tails have halved since the last
        // attempt (walk scores live in [0, ~1], so tails above 0.25
        // cannot separate anything either). Kill statements are about
        // the fixpoint, so skipped sweeps forfeit nothing but latency.
        if self.n_alive > CHEAP_FIELD && tmax > self.next_race_tail.min(0.25) {
            return false;
        }
        self.next_race_tail = tmax * 0.5;
        let mut best_lo = f64::NEG_INFINITY;
        let mut his: Vec<(usize, f64)> = Vec::with_capacity(self.n_alive);
        for (gi, g) in self.groups.iter().enumerate() {
            if !self.alive[gi] {
                continue;
            }
            let q = g[0];
            let r = interval(probe.recall[q], probe.qtail(0, q), probe.bounds[0][q]);
            let rt = interval(
                probe.recall_gathered[q],
                probe.qtail(1, q),
                probe.bounds[1][q],
            );
            let rs = interval(probe.recall_all[q], probe.qtail(2, q), probe.bounds[2][q]);
            let (lo, hi) = primary_interval(&self.state, self.strategy, r, rt, rs);
            if lo > best_lo {
                best_lo = lo;
            }
            his.push((gi, hi));
        }
        for &(gi, hi) in &his {
            if hi + CERT_MARGIN < best_lo {
                self.alive[gi] = false;
                self.n_alive -= 1;
            }
        }
        if self.n_alive == 1 {
            let gi = self.alive.iter().position(|&a| a).expect("one alive");
            // Stop only once the lone survivor's own committed scores
            // are converged to within COMMIT_TOL.
            let q = self.groups[gi][0];
            if (0..3).all(|w| probe.qtail(w, q) <= COMMIT_TOL) {
                self.winner = Some(gi);
                return true;
            }
        }
        false
    }
}

/// Enclose a walk score: the iterate ± its certified tail, clipped to
/// `[0, static upper bound]` (walk utilities are non-negative and the
/// static bound dominates the fixpoint).
fn interval(x: f64, tail: f64, ub: f64) -> (f64, f64) {
    ((x - tail).max(0.0), (x + tail).min(ub))
}

/// Certified interval of a strategy's *primary* score given intervals on
/// the three walk scores, via interval arithmetic over the collective
/// utilities' monotonicities: `cr` is nondecreasing in `r` and
/// nonincreasing in `r̃`; `cr*` is nondecreasing in `r*`; `cp = cr/cr*`.
fn primary_interval(
    state: &CollectiveState,
    strategy: Strategy,
    r: (f64, f64),
    rt: (f64, f64),
    rs: (f64, f64),
) -> (f64, f64) {
    let cr_lo = state.collective_recall(r.0, rt.1);
    let cr_hi = state.collective_recall(r.1, rt.0);
    if matches!(strategy, Strategy::Recall) {
        return (cr_lo, cr_hi);
    }
    let den_lo = state.collective_recall_star(rs.0);
    let den_hi = state.collective_recall_star(rs.1);
    if den_lo <= f64::EPSILON {
        // `collective_precision` clamps to 0 somewhere inside this
        // interval; make the group impossible to kill or to win.
        return (f64::NEG_INFINITY, f64::INFINITY);
    }
    let cp_lo = cr_lo / den_hi;
    let cp_hi = cr_hi / den_lo;
    match strategy {
        Strategy::Precision => (cp_lo, cp_hi),
        Strategy::Recall => unreachable!("handled above"),
        Strategy::Balanced => ((cp_lo * cr_lo).sqrt(), (cp_hi * cr_hi).sqrt()),
        Strategy::Weighted { precision_weight } => {
            let w = precision_weight.clamp(0.0, 1.0);
            (
                cp_lo.max(0.0).powf(w) * cr_lo.max(0.0).powf(1.0 - w),
                cp_hi.max(0.0).powf(w) * cr_hi.max(0.0).powf(1.0 - w),
            )
        }
    }
}

/// Which utility the selector optimizes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Strategy {
    /// Optimize (collective) precision.
    Precision,
    /// Optimize (collective) recall.
    Recall,
    /// Geometric mean of collective precision and recall (L2QBAL —
    /// "we select queries based on the geometric mean of the collective
    /// precision and recall").
    Balanced,
    /// Weighted geometric mean `cp^w · cr^(1−w)` — the paper leaves "a
    /// more thorough and principled approach" to combining the two
    /// utilities as future work; this is the natural one-parameter
    /// family containing L2QBAL (w = 0.5), L2QP (w → 1) and L2QR
    /// (w → 0).
    Weighted {
        /// Share of collective precision, in `[0, 1]`.
        precision_weight: f64,
    },
}

/// The L2Q selector family: utility inference on the entity graph, with
/// optional domain awareness (templates + frequent domain queries) and
/// optional context awareness (collective utilities).
pub struct L2qSelector {
    strategy: Strategy,
    domain_aware: bool,
    context_aware: bool,
    state: Option<CollectiveState>,
}

impl L2qSelector {
    /// Full L2QP: precision with domain + context awareness.
    pub fn l2qp() -> Self {
        Self::custom(Strategy::Precision, true, true)
    }

    /// Full L2QR: recall with domain + context awareness.
    pub fn l2qr() -> Self {
        Self::custom(Strategy::Recall, true, true)
    }

    /// Full L2QBAL: balanced combination with domain + context awareness.
    pub fn l2qbal() -> Self {
        Self::custom(Strategy::Balanced, true, true)
    }

    /// Ablation `P`: precision only (Sect. III model).
    pub fn precision_only() -> Self {
        Self::custom(Strategy::Precision, false, false)
    }

    /// Ablation `R`: recall only (Sect. III model).
    pub fn recall_only() -> Self {
        Self::custom(Strategy::Recall, false, false)
    }

    /// Ablation `P+t`: precision with template-based domain learning but
    /// no context.
    pub fn precision_templates() -> Self {
        Self::custom(Strategy::Precision, true, false)
    }

    /// Ablation `R+t`: recall with templates, no context.
    pub fn recall_templates() -> Self {
        Self::custom(Strategy::Recall, true, false)
    }

    /// Weighted balanced strategy (extension; see [`Strategy::Weighted`]).
    pub fn balanced_weighted(precision_weight: f64) -> Self {
        Self::custom(Strategy::Weighted { precision_weight }, true, true)
    }

    /// Fully custom combination.
    pub fn custom(strategy: Strategy, domain_aware: bool, context_aware: bool) -> Self {
        Self {
            strategy,
            domain_aware,
            context_aware,
            state: None,
        }
    }

    /// Whether this selector uses the domain model.
    pub fn is_domain_aware(&self) -> bool {
        self.domain_aware
    }

    /// Whether this selector uses collective utilities.
    pub fn is_context_aware(&self) -> bool {
        self.context_aware
    }

    /// Assemble the candidate pool for this configuration. Works on
    /// borrowed queries throughout — the fired set is built once up
    /// front, dedup is by reference — and clones each surviving query
    /// exactly once on the way out.
    fn candidate_pool(&self, input: &SelectionInput<'_>) -> Vec<Query> {
        let fired: FxHashSet<&Query> = input.fired.iter().collect();
        let mut pool: Vec<&Query> = input
            .page_candidates
            .iter()
            .filter(|q| !fired.contains(q))
            .collect();
        if self.domain_aware {
            if let Some(dm) = input.domain {
                let seed = input.fired.first();
                let mut seen: FxHashSet<&Query> = pool.iter().copied().collect();
                for q in dm.frequent_queries() {
                    if fired.contains(q) {
                        continue;
                    }
                    if seed
                        .map(|s| subset_of_seed(q, s, input.corpus))
                        .unwrap_or(false)
                    {
                        continue;
                    }
                    if seen.insert(q) {
                        pool.push(q);
                    }
                }
            }
        }
        pool.into_iter().cloned().collect()
    }
}

impl QuerySelector for L2qSelector {
    fn name(&self) -> String {
        match (self.strategy, self.domain_aware, self.context_aware) {
            (Strategy::Precision, true, true) => "L2QP".into(),
            (Strategy::Recall, true, true) => "L2QR".into(),
            (Strategy::Balanced, true, true) => "L2QBAL".into(),
            (Strategy::Precision, true, false) => "P+t".into(),
            (Strategy::Recall, true, false) => "R+t".into(),
            (Strategy::Precision, false, false) => "P".into(),
            (Strategy::Recall, false, false) => "R".into(),
            (Strategy::Weighted { precision_weight }, true, true) => {
                format!("L2QW({precision_weight:.2})")
            }
            (s, d, c) => format!("L2Q({s:?},domain={d},context={c})"),
        }
    }

    fn reset(&mut self) {
        self.state = None;
    }

    fn collective_state(&self) -> Option<CollectiveState> {
        self.state
    }

    fn restore_collective(&mut self, state: CollectiveState) {
        self.state = Some(state);
    }

    fn select(&mut self, input: &SelectionInput<'_>) -> Option<Query> {
        let candidates = self.candidate_pool(input);
        if candidates.is_empty() {
            return None;
        }

        let domain = if self.domain_aware {
            input.domain
        } else {
            None
        };
        let mut guard = input.phase_state.map(lock_recover);
        let phase = match guard.as_deref_mut() {
            Some(state) => EntityPhase::build_incremental(
                input.corpus,
                input.aspect,
                input.gathered,
                input.oracle,
                candidates,
                domain,
                self.domain_aware,
                input.cfg,
                state,
            ),
            None => EntityPhase::build(
                input.corpus,
                input.aspect,
                input.gathered,
                input.oracle,
                candidates,
                domain,
                self.domain_aware,
                input.cfg,
            ),
        };

        let scores: Vec<f64> = if self.context_aware {
            let state = *self
                .state
                .get_or_insert_with(|| CollectiveState::new(input.cfg.r0));
            let walks = if input.cfg.prune {
                let mut cert = Certifier::new(state, self.strategy, phase.certifiable_groups());
                let (walks, _early) =
                    phase.context_walks_certified(guard.as_deref_mut(), |p| cert.check(p));
                let m = selection_metrics();
                let total = phase.candidates().len() as u64;
                match cert.winner {
                    Some(w) => {
                        // Certified: only the winner class's utilities
                        // were needed at (near-)full accuracy.
                        let exact = cert.groups[w].len() as u64;
                        m.exact.add(exact);
                        m.pruned.add(total - exact);
                        if total > 0 {
                            m.active_fraction.record(exact as f64 / total as f64);
                        }
                    }
                    None => {
                        // Bounds never separated a winner: the solve ran
                        // to convergence, i.e. the exact path.
                        m.exact.add(total);
                        m.fallbacks.inc();
                        m.active_fraction.record(1.0);
                    }
                }
                walks
            } else {
                phase.context_walks(guard.as_deref_mut(), input.cfg.parallel_walks)
            };
            let (r, r_tilde, rstar) = (walks.recall, walks.recall_gathered, walks.recall_all);
            let connected = phase.connected();
            // Primary score per strategy, with the complementary collective
            // utility as a secondary tie-break key (many candidates tie on
            // the primary early on, when the seed results are uniform).
            let scores: Vec<(f64, f64)> = (0..phase.candidates().len())
                .map(|i| {
                    if !connected[i] {
                        return (f64::MIN, f64::MIN);
                    }
                    let cp = state.collective_precision(r[i], r_tilde[i], rstar[i]);
                    let cr = state.collective_recall(r[i], r_tilde[i]);
                    match self.strategy {
                        Strategy::Precision => (cp, cr),
                        Strategy::Recall => (cr, cp),
                        Strategy::Balanced => ((cp * cr).sqrt(), cr),
                        Strategy::Weighted { precision_weight } => {
                            let w = precision_weight.clamp(0.0, 1.0);
                            (cp.max(0.0).powf(w) * cr.max(0.0).powf(1.0 - w), cr)
                        }
                    }
                })
                .collect();
            let best = argmax_pairs(&scores, phase.candidates())?;
            if scores[best].0 == f64::MIN {
                return None;
            }
            // Commit the chosen query's contribution to Φ.
            let st = self.state.as_mut().expect("state initialized above");
            st.commit(r[best], r_tilde[best], rstar[best]);
            return Some(phase.candidates()[best].clone());
        } else {
            match self.strategy {
                Strategy::Precision => phase.precision_with(guard.as_deref_mut()),
                Strategy::Recall => phase.recall_with(guard.as_deref_mut()),
                Strategy::Weighted { precision_weight } => {
                    let w = precision_weight.clamp(0.0, 1.0);
                    let p = phase.precision_with(guard.as_deref_mut());
                    let r = phase.recall_with(guard.as_deref_mut());
                    p.iter()
                        .zip(&r)
                        .map(|(a, b)| a.max(0.0).powf(w) * b.max(0.0).powf(1.0 - w))
                        .collect()
                }
                Strategy::Balanced => {
                    let p = phase.precision_with(guard.as_deref_mut());
                    let r = phase.recall_with(guard.as_deref_mut());
                    p.iter().zip(&r).map(|(a, b)| (a * b).sqrt()).collect()
                }
            }
        };

        argmax(&scores, phase.candidates()).map(|i| phase.candidates()[i].clone())
    }
}

/// Argmax over (primary, secondary) score pairs; final ties break toward
/// the lexicographically smallest query so selection is deterministic.
pub(crate) fn argmax_pairs(scores: &[(f64, f64)], queries: &[Query]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for i in 0..scores.len() {
        match best {
            None => best = Some(i),
            Some(b) => {
                let cand = (scores[i].0, scores[i].1);
                let cur = (scores[b].0, scores[b].1);
                if cand > cur || (cand == cur && queries[i] < queries[b]) {
                    best = Some(i);
                }
            }
        }
    }
    best
}

/// Index of the maximum score; ties break toward the lexicographically
/// smallest query so selection is deterministic.
pub(crate) fn argmax(scores: &[f64], queries: &[Query]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for i in 0..scores.len() {
        match best {
            None => best = Some(i),
            Some(b) => {
                if scores[i] > scores[b] || (scores[i] == scores[b] && queries[i] < queries[b]) {
                    best = Some(i);
                }
            }
        }
    }
    best
}

/// Whether every word of `q` already occurs in the seed query — or is a
/// stopword. Such a candidate is pure redundancy: the seed "is appended
/// to subsequent queries when submitting them to the search engine", so
/// firing a subset of it (padded with function words) retrieves nothing
/// the seed did not.
pub fn subset_of_seed(q: &Query, seed: &Query, corpus: &Corpus) -> bool {
    q.words()
        .iter()
        .all(|w| seed.words().contains(w) || l2q_text::is_stopword(corpus.symbols.resolve(*w)))
}

/// A helper used by the harvester: enumerate page candidates from the
/// gathered pages, excluding fired queries and seed-subset queries
/// (`fired[0]` is the seed).
pub fn page_candidates(
    corpus: &Corpus,
    gathered: &[PageId],
    fired: &[Query],
    cfg: &L2qConfig,
    stops: &mut StopwordCache,
) -> Vec<Query> {
    let pages: Vec<_> = gathered.iter().map(|&p| corpus.page(p)).collect();
    let fired_set: FxHashSet<&Query> = fired.iter().collect();
    let seed = fired.first();
    crate::candidates::pages_queries(corpus, pages.iter().copied(), cfg.candidates.max_len, stops)
        .into_iter()
        .filter(|q| !fired_set.contains(q))
        .filter(|q| seed.map(|s| !subset_of_seed(q, s, corpus)).unwrap_or(true))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisoned_phase_state_lock_recovers_to_a_cold_state() {
        let slot = std::sync::Arc::new(Mutex::new(EntityPhaseState::new()));
        {
            let poisoner = std::sync::Arc::clone(&slot);
            let _ = std::thread::spawn(move || {
                let _guard = poisoner.lock().unwrap();
                panic!("boom");
            })
            .join();
        }
        assert!(slot.is_poisoned(), "test setup should poison the mutex");
        {
            let guard = lock_recover(&slot);
            assert_eq!(guard.generation(), 0, "recovery resets to a cold state");
        }
        assert!(!slot.is_poisoned(), "recovery clears the poison");
        // And the normal path still works afterwards.
        drop(lock_recover(&slot));
    }

    #[test]
    fn primary_intervals_enclose_the_exact_scores() {
        let state = CollectiveState::new(0.3);
        let strategies = [
            Strategy::Precision,
            Strategy::Recall,
            Strategy::Balanced,
            Strategy::Weighted {
                precision_weight: 0.7,
            },
        ];
        // Exact point scores must always land inside the interval built
        // from enclosing walk-score intervals.
        let points = [
            (0.0, 0.0, 0.0),
            (0.2, 0.1, 0.4),
            (0.9, 0.8, 0.95),
            (1.0, 1.0, 1.0),
        ];
        for strategy in strategies {
            for &(r, rt, rs) in &points {
                let pad = 1e-3;
                let iv = |x: f64| ((x - pad).max(0.0), (x + pad).min(1.0));
                let (lo, hi) = primary_interval(&state, strategy, iv(r), iv(rt), iv(rs));
                assert!(lo <= hi, "{strategy:?}: empty interval at {r} {rt} {rs}");
                let cp = state.collective_precision(r, rt, rs);
                let cr = state.collective_recall(r, rt);
                let exact = match strategy {
                    Strategy::Precision => cp,
                    Strategy::Recall => cr,
                    Strategy::Balanced => (cp * cr).sqrt(),
                    Strategy::Weighted { precision_weight } => {
                        let w = precision_weight.clamp(0.0, 1.0);
                        cp.max(0.0).powf(w) * cr.max(0.0).powf(1.0 - w)
                    }
                };
                assert!(
                    lo - 1e-12 <= exact && exact <= hi + 1e-12,
                    "{strategy:?}: exact {exact} outside [{lo}, {hi}] at {r} {rt} {rs}"
                );
            }
        }
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(L2qSelector::l2qp().name(), "L2QP");
        assert_eq!(L2qSelector::l2qr().name(), "L2QR");
        assert_eq!(L2qSelector::l2qbal().name(), "L2QBAL");
        assert_eq!(L2qSelector::precision_only().name(), "P");
        assert_eq!(L2qSelector::recall_only().name(), "R");
        assert_eq!(L2qSelector::precision_templates().name(), "P+t");
        assert_eq!(L2qSelector::recall_templates().name(), "R+t");
    }

    #[test]
    fn argmax_breaks_ties_lexicographically() {
        use l2q_text::Sym;
        let queries = vec![
            Query::new(&[Sym(5)]),
            Query::new(&[Sym(2)]),
            Query::new(&[Sym(9)]),
        ];
        let scores = vec![1.0, 1.0, 0.5];
        assert_eq!(argmax(&scores, &queries), Some(1));
        assert_eq!(argmax(&[], &[]), None);
    }

    #[test]
    fn flags_are_exposed() {
        assert!(L2qSelector::l2qp().is_domain_aware());
        assert!(L2qSelector::l2qp().is_context_aware());
        assert!(!L2qSelector::precision_only().is_domain_aware());
        assert!(!L2qSelector::precision_templates().is_context_aware());
    }

    #[test]
    fn subset_of_seed_covers_stopword_padding() {
        use l2q_corpus::{generate, researchers_domain, CorpusConfig};
        let mut corpus = generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap();
        let name = corpus.symbols.intern("marc");
        let inst = corpus.symbols.intern("uiuc");
        let the = corpus.symbols.intern("the");
        let research = corpus.symbols.intern("research");
        let seed = Query::new(&[name, inst]);

        assert!(subset_of_seed(&Query::new(&[name]), &seed, &corpus));
        assert!(subset_of_seed(&Query::new(&[inst, name]), &seed, &corpus));
        assert!(
            subset_of_seed(&Query::new(&[the, name]), &seed, &corpus),
            "stopword + seed word is still redundant"
        );
        assert!(
            !subset_of_seed(&Query::new(&[research, name]), &seed, &corpus),
            "a content word outside the seed is not redundant"
        );
        assert!(
            subset_of_seed(&Query::new(&[the]), &seed, &corpus),
            "all-stopword queries are degenerate"
        );
    }

    #[test]
    fn page_candidates_exclude_fired_and_seed_subsets() {
        use crate::candidates::StopwordCache;
        use l2q_corpus::{generate, researchers_domain, CorpusConfig, EntityId};
        let corpus = generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap();
        let cfg = L2qConfig::default();
        let entity = EntityId(0);
        let gathered: Vec<_> = corpus
            .pages_of(entity)
            .iter()
            .take(4)
            .map(|p| p.id)
            .collect();
        let seed = Query::new(corpus.seed_query(entity));
        let mut stops = StopwordCache::new();

        let first = page_candidates(
            &corpus,
            &gathered,
            std::slice::from_ref(&seed),
            &cfg,
            &mut stops,
        );
        assert!(!first.is_empty());
        for q in &first {
            assert!(!subset_of_seed(q, &seed, &corpus));
        }

        // Fire the first candidate: it must disappear from the next pool.
        let fired = vec![seed, first[0].clone()];
        let second = page_candidates(&corpus, &gathered, &fired, &cfg, &mut stops);
        assert!(!second.contains(&first[0]));
    }
}
