//! Query selection: the [`QuerySelector`] trait shared by L2Q and all
//! baselines, and the [`L2qSelector`] family (P, R, P+t, R+t, L2QP, L2QR,
//! L2QBAL — the strategies of the paper's Sect. VI-B/C).

use crate::candidates::StopwordCache;
use crate::config::L2qConfig;
use crate::context::CollectiveState;
use crate::domain_phase::DomainModel;
use crate::entity_phase::{EntityPhase, EntityPhaseState};
use crate::query::Query;
use l2q_aspect::RelevanceOracle;
use l2q_corpus::{AspectId, Corpus, EntityId, PageId};
use std::collections::HashSet;
use std::sync::Mutex;

/// Everything a selector may consult when choosing the next query.
pub struct SelectionInput<'a> {
    /// The corpus.
    pub corpus: &'a Corpus,
    /// Target entity.
    pub entity: EntityId,
    /// Target aspect.
    pub aspect: AspectId,
    /// Current result pages PE, in gathering order (deduplicated).
    pub gathered: &'a [PageId],
    /// Y over `gathered` (classifier-materialized, like the paper).
    pub relevant: &'a [bool],
    /// The context Φ: every query fired so far, seed first.
    pub fired: &'a [Query],
    /// Candidates enumerated from the current pages (fired ones removed).
    pub page_candidates: &'a [Query],
    /// The learned domain model, if the pipeline is domain-aware.
    pub domain: Option<&'a DomainModel>,
    /// The relevance oracle (materialized Y for any page).
    pub oracle: &'a RelevanceOracle,
    /// The search engine. L2Q and the published baselines must NOT fire
    /// candidates through it (utilities are inferred "without actually
    /// firing any candidate query") — it exists for the evaluation's ideal
    /// upper-bound selector, which is explicitly allowed to cheat.
    pub engine: &'a l2q_retrieval::SearchEngine,
    /// Pipeline configuration.
    pub cfg: &'a L2qConfig,
    /// Cross-step entity-phase cache, if the caller carries one (the
    /// harvester does when `cfg.incremental_phase` is set). `None` makes
    /// every selection a from-scratch cold build — same output, slower.
    /// Behind a `Mutex` (locked once per selection, never contended)
    /// so the harvest state holding it stays `Sync`.
    pub phase_state: Option<&'a Mutex<EntityPhaseState>>,
}

/// A query-selection policy (one `select` call per harvest iteration).
///
/// Selectors are `Send` so evaluations can parallelize over entities (the
/// paper's own efficiency suggestion, Sect. VI-C).
pub trait QuerySelector: Send {
    /// Short display name (`L2QP`, `LM`, …).
    fn name(&self) -> String;

    /// Reset per (entity, aspect) harvest run.
    fn reset(&mut self) {}

    /// Choose the next query, or `None` if no candidate is available.
    fn select(&mut self, input: &SelectionInput<'_>) -> Option<Query>;

    /// The collective-recall recursion state, for selectors that carry one
    /// (checkpointing hook; context-free selectors have none).
    fn collective_state(&self) -> Option<CollectiveState> {
        None
    }

    /// Restore a previously exported collective state (checkpoint
    /// restore). Context-free selectors ignore it.
    fn restore_collective(&mut self, _state: CollectiveState) {}
}

/// Which utility the selector optimizes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Strategy {
    /// Optimize (collective) precision.
    Precision,
    /// Optimize (collective) recall.
    Recall,
    /// Geometric mean of collective precision and recall (L2QBAL —
    /// "we select queries based on the geometric mean of the collective
    /// precision and recall").
    Balanced,
    /// Weighted geometric mean `cp^w · cr^(1−w)` — the paper leaves "a
    /// more thorough and principled approach" to combining the two
    /// utilities as future work; this is the natural one-parameter
    /// family containing L2QBAL (w = 0.5), L2QP (w → 1) and L2QR
    /// (w → 0).
    Weighted {
        /// Share of collective precision, in `[0, 1]`.
        precision_weight: f64,
    },
}

/// The L2Q selector family: utility inference on the entity graph, with
/// optional domain awareness (templates + frequent domain queries) and
/// optional context awareness (collective utilities).
pub struct L2qSelector {
    strategy: Strategy,
    domain_aware: bool,
    context_aware: bool,
    state: Option<CollectiveState>,
}

impl L2qSelector {
    /// Full L2QP: precision with domain + context awareness.
    pub fn l2qp() -> Self {
        Self::custom(Strategy::Precision, true, true)
    }

    /// Full L2QR: recall with domain + context awareness.
    pub fn l2qr() -> Self {
        Self::custom(Strategy::Recall, true, true)
    }

    /// Full L2QBAL: balanced combination with domain + context awareness.
    pub fn l2qbal() -> Self {
        Self::custom(Strategy::Balanced, true, true)
    }

    /// Ablation `P`: precision only (Sect. III model).
    pub fn precision_only() -> Self {
        Self::custom(Strategy::Precision, false, false)
    }

    /// Ablation `R`: recall only (Sect. III model).
    pub fn recall_only() -> Self {
        Self::custom(Strategy::Recall, false, false)
    }

    /// Ablation `P+t`: precision with template-based domain learning but
    /// no context.
    pub fn precision_templates() -> Self {
        Self::custom(Strategy::Precision, true, false)
    }

    /// Ablation `R+t`: recall with templates, no context.
    pub fn recall_templates() -> Self {
        Self::custom(Strategy::Recall, true, false)
    }

    /// Weighted balanced strategy (extension; see [`Strategy::Weighted`]).
    pub fn balanced_weighted(precision_weight: f64) -> Self {
        Self::custom(Strategy::Weighted { precision_weight }, true, true)
    }

    /// Fully custom combination.
    pub fn custom(strategy: Strategy, domain_aware: bool, context_aware: bool) -> Self {
        Self {
            strategy,
            domain_aware,
            context_aware,
            state: None,
        }
    }

    /// Whether this selector uses the domain model.
    pub fn is_domain_aware(&self) -> bool {
        self.domain_aware
    }

    /// Whether this selector uses collective utilities.
    pub fn is_context_aware(&self) -> bool {
        self.context_aware
    }

    /// Assemble the candidate pool for this configuration. Works on
    /// borrowed queries throughout — the fired set is built once up
    /// front, dedup is by reference — and clones each surviving query
    /// exactly once on the way out.
    fn candidate_pool(&self, input: &SelectionInput<'_>) -> Vec<Query> {
        let fired: HashSet<&Query> = input.fired.iter().collect();
        let mut pool: Vec<&Query> = input
            .page_candidates
            .iter()
            .filter(|q| !fired.contains(q))
            .collect();
        if self.domain_aware {
            if let Some(dm) = input.domain {
                let seed = input.fired.first();
                let mut seen: HashSet<&Query> = pool.iter().copied().collect();
                for q in dm.frequent_queries() {
                    if fired.contains(q) {
                        continue;
                    }
                    if seed
                        .map(|s| subset_of_seed(q, s, input.corpus))
                        .unwrap_or(false)
                    {
                        continue;
                    }
                    if seen.insert(q) {
                        pool.push(q);
                    }
                }
            }
        }
        pool.into_iter().cloned().collect()
    }
}

impl QuerySelector for L2qSelector {
    fn name(&self) -> String {
        match (self.strategy, self.domain_aware, self.context_aware) {
            (Strategy::Precision, true, true) => "L2QP".into(),
            (Strategy::Recall, true, true) => "L2QR".into(),
            (Strategy::Balanced, true, true) => "L2QBAL".into(),
            (Strategy::Precision, true, false) => "P+t".into(),
            (Strategy::Recall, true, false) => "R+t".into(),
            (Strategy::Precision, false, false) => "P".into(),
            (Strategy::Recall, false, false) => "R".into(),
            (Strategy::Weighted { precision_weight }, true, true) => {
                format!("L2QW({precision_weight:.2})")
            }
            (s, d, c) => format!("L2Q({s:?},domain={d},context={c})"),
        }
    }

    fn reset(&mut self) {
        self.state = None;
    }

    fn collective_state(&self) -> Option<CollectiveState> {
        self.state
    }

    fn restore_collective(&mut self, state: CollectiveState) {
        self.state = Some(state);
    }

    fn select(&mut self, input: &SelectionInput<'_>) -> Option<Query> {
        let candidates = self.candidate_pool(input);
        if candidates.is_empty() {
            return None;
        }

        let domain = if self.domain_aware {
            input.domain
        } else {
            None
        };
        let mut guard = input
            .phase_state
            .map(|m| m.lock().expect("phase state lock poisoned"));
        let phase = match guard.as_deref_mut() {
            Some(state) => EntityPhase::build_incremental(
                input.corpus,
                input.aspect,
                input.gathered,
                input.oracle,
                candidates,
                domain,
                self.domain_aware,
                input.cfg,
                state,
            ),
            None => EntityPhase::build(
                input.corpus,
                input.aspect,
                input.gathered,
                input.oracle,
                candidates,
                domain,
                self.domain_aware,
                input.cfg,
            ),
        };

        let scores: Vec<f64> = if self.context_aware {
            let state = *self
                .state
                .get_or_insert_with(|| CollectiveState::new(input.cfg.r0));
            let walks = phase.context_walks(guard.as_deref_mut(), input.cfg.parallel_walks);
            let (r, r_tilde, rstar) = (walks.recall, walks.recall_gathered, walks.recall_all);
            let connected = phase.connected();
            // Primary score per strategy, with the complementary collective
            // utility as a secondary tie-break key (many candidates tie on
            // the primary early on, when the seed results are uniform).
            let scores: Vec<(f64, f64)> = (0..phase.candidates().len())
                .map(|i| {
                    if !connected[i] {
                        return (f64::MIN, f64::MIN);
                    }
                    let cp = state.collective_precision(r[i], r_tilde[i], rstar[i]);
                    let cr = state.collective_recall(r[i], r_tilde[i]);
                    match self.strategy {
                        Strategy::Precision => (cp, cr),
                        Strategy::Recall => (cr, cp),
                        Strategy::Balanced => ((cp * cr).sqrt(), cr),
                        Strategy::Weighted { precision_weight } => {
                            let w = precision_weight.clamp(0.0, 1.0);
                            (cp.max(0.0).powf(w) * cr.max(0.0).powf(1.0 - w), cr)
                        }
                    }
                })
                .collect();
            let best = argmax_pairs(&scores, phase.candidates())?;
            if scores[best].0 == f64::MIN {
                return None;
            }
            // Commit the chosen query's contribution to Φ.
            let st = self.state.as_mut().expect("state initialized above");
            st.commit(r[best], r_tilde[best], rstar[best]);
            return Some(phase.candidates()[best].clone());
        } else {
            match self.strategy {
                Strategy::Precision => phase.precision_with(guard.as_deref_mut()),
                Strategy::Recall => phase.recall_with(guard.as_deref_mut()),
                Strategy::Weighted { precision_weight } => {
                    let w = precision_weight.clamp(0.0, 1.0);
                    let p = phase.precision_with(guard.as_deref_mut());
                    let r = phase.recall_with(guard.as_deref_mut());
                    p.iter()
                        .zip(&r)
                        .map(|(a, b)| a.max(0.0).powf(w) * b.max(0.0).powf(1.0 - w))
                        .collect()
                }
                Strategy::Balanced => {
                    let p = phase.precision_with(guard.as_deref_mut());
                    let r = phase.recall_with(guard.as_deref_mut());
                    p.iter().zip(&r).map(|(a, b)| (a * b).sqrt()).collect()
                }
            }
        };

        argmax(&scores, phase.candidates()).map(|i| phase.candidates()[i].clone())
    }
}

/// Argmax over (primary, secondary) score pairs; final ties break toward
/// the lexicographically smallest query so selection is deterministic.
pub(crate) fn argmax_pairs(scores: &[(f64, f64)], queries: &[Query]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for i in 0..scores.len() {
        match best {
            None => best = Some(i),
            Some(b) => {
                let cand = (scores[i].0, scores[i].1);
                let cur = (scores[b].0, scores[b].1);
                if cand > cur || (cand == cur && queries[i] < queries[b]) {
                    best = Some(i);
                }
            }
        }
    }
    best
}

/// Index of the maximum score; ties break toward the lexicographically
/// smallest query so selection is deterministic.
pub(crate) fn argmax(scores: &[f64], queries: &[Query]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for i in 0..scores.len() {
        match best {
            None => best = Some(i),
            Some(b) => {
                if scores[i] > scores[b] || (scores[i] == scores[b] && queries[i] < queries[b]) {
                    best = Some(i);
                }
            }
        }
    }
    best
}

/// Whether every word of `q` already occurs in the seed query — or is a
/// stopword. Such a candidate is pure redundancy: the seed "is appended
/// to subsequent queries when submitting them to the search engine", so
/// firing a subset of it (padded with function words) retrieves nothing
/// the seed did not.
pub fn subset_of_seed(q: &Query, seed: &Query, corpus: &Corpus) -> bool {
    q.words()
        .iter()
        .all(|w| seed.words().contains(w) || l2q_text::is_stopword(corpus.symbols.resolve(*w)))
}

/// A helper used by the harvester: enumerate page candidates from the
/// gathered pages, excluding fired queries and seed-subset queries
/// (`fired[0]` is the seed).
pub fn page_candidates(
    corpus: &Corpus,
    gathered: &[PageId],
    fired: &[Query],
    cfg: &L2qConfig,
    stops: &mut StopwordCache,
) -> Vec<Query> {
    let pages: Vec<_> = gathered.iter().map(|&p| corpus.page(p)).collect();
    let fired_set: HashSet<&Query> = fired.iter().collect();
    let seed = fired.first();
    crate::candidates::pages_queries(corpus, pages.iter().copied(), cfg.candidates.max_len, stops)
        .into_iter()
        .filter(|q| !fired_set.contains(q))
        .filter(|q| seed.map(|s| !subset_of_seed(q, s, corpus)).unwrap_or(true))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(L2qSelector::l2qp().name(), "L2QP");
        assert_eq!(L2qSelector::l2qr().name(), "L2QR");
        assert_eq!(L2qSelector::l2qbal().name(), "L2QBAL");
        assert_eq!(L2qSelector::precision_only().name(), "P");
        assert_eq!(L2qSelector::recall_only().name(), "R");
        assert_eq!(L2qSelector::precision_templates().name(), "P+t");
        assert_eq!(L2qSelector::recall_templates().name(), "R+t");
    }

    #[test]
    fn argmax_breaks_ties_lexicographically() {
        use l2q_text::Sym;
        let queries = vec![
            Query::new(&[Sym(5)]),
            Query::new(&[Sym(2)]),
            Query::new(&[Sym(9)]),
        ];
        let scores = vec![1.0, 1.0, 0.5];
        assert_eq!(argmax(&scores, &queries), Some(1));
        assert_eq!(argmax(&[], &[]), None);
    }

    #[test]
    fn flags_are_exposed() {
        assert!(L2qSelector::l2qp().is_domain_aware());
        assert!(L2qSelector::l2qp().is_context_aware());
        assert!(!L2qSelector::precision_only().is_domain_aware());
        assert!(!L2qSelector::precision_templates().is_context_aware());
    }

    #[test]
    fn subset_of_seed_covers_stopword_padding() {
        use l2q_corpus::{generate, researchers_domain, CorpusConfig};
        let mut corpus = generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap();
        let name = corpus.symbols.intern("marc");
        let inst = corpus.symbols.intern("uiuc");
        let the = corpus.symbols.intern("the");
        let research = corpus.symbols.intern("research");
        let seed = Query::new(&[name, inst]);

        assert!(subset_of_seed(&Query::new(&[name]), &seed, &corpus));
        assert!(subset_of_seed(&Query::new(&[inst, name]), &seed, &corpus));
        assert!(
            subset_of_seed(&Query::new(&[the, name]), &seed, &corpus),
            "stopword + seed word is still redundant"
        );
        assert!(
            !subset_of_seed(&Query::new(&[research, name]), &seed, &corpus),
            "a content word outside the seed is not redundant"
        );
        assert!(
            subset_of_seed(&Query::new(&[the]), &seed, &corpus),
            "all-stopword queries are degenerate"
        );
    }

    #[test]
    fn page_candidates_exclude_fired_and_seed_subsets() {
        use crate::candidates::StopwordCache;
        use l2q_corpus::{generate, researchers_domain, CorpusConfig, EntityId};
        let corpus = generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap();
        let cfg = L2qConfig::default();
        let entity = EntityId(0);
        let gathered: Vec<_> = corpus
            .pages_of(entity)
            .iter()
            .take(4)
            .map(|p| p.id)
            .collect();
        let seed = Query::new(corpus.seed_query(entity));
        let mut stops = StopwordCache::new();

        let first = page_candidates(
            &corpus,
            &gathered,
            std::slice::from_ref(&seed),
            &cfg,
            &mut stops,
        );
        assert!(!first.is_empty());
        for q in &first {
            assert!(!subset_of_seed(q, &seed, &corpus));
        }

        // Fire the first candidate: it must disappear from the next pool.
        let fired = vec![seed, first[0].clone()];
        let second = page_candidates(&corpus, &gathered, &fired, &cfg, &mut stops);
        assert!(!second.contains(&first[0]));
    }
}
