//! Context-aware collective utilities (paper Sect. V).
//!
//! The candidate query q is judged *together with* the context Φ of past
//! queries. Collective recall decomposes by inclusion–exclusion (Eq. 26):
//!
//! ```text
//! R(Φ ∪ {q}) = R(Φ) + R(q) − Δ(Φ, q),    Δ(Φ, q) = R^(Ỹ)(q) · R(Φ)
//! ```
//!
//! with the base case `R(q⁽⁰⁾) = r0` (the cross-validated seed-query
//! parameter). Collective precision is the ratio of two collective recalls
//! (Eq. 27): the numerator w.r.t. the aspect Y and the denominator w.r.t.
//! Y* under which every page counts as relevant:
//!
//! ```text
//! P(Φ ∪ {q}) ∝ R(Φ ∪ {q}) / R^(Y*)(Φ ∪ {q})
//! ```
//!
//! [`CollectiveState`] carries `R(Φ)` and `R^(Y*)(Φ)` across iterations,
//! updating them recursively when a query is committed.

/// Running collective-recall state for one harvest run.
#[derive(Clone, Copy, Debug)]
pub struct CollectiveState {
    /// `R(Φ)` w.r.t. the target aspect Y.
    r_phi: f64,
    /// `R^(Y*)(Φ)` where every page is relevant.
    rstar_phi: f64,
}

impl CollectiveState {
    /// Initialize at the seed query: `Φ = {q⁽⁰⁾}` with `R(q⁽⁰⁾) = r0` for
    /// both Y and Y* (nothing is known before the first result page).
    pub fn new(r0: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&r0));
        Self {
            r_phi: r0,
            rstar_phi: r0,
        }
    }

    /// Reassemble a state from previously observed `R(Φ)` / `R^(Y*)(Φ)`
    /// values (checkpoint restore). The values are trusted bit-for-bit so
    /// a restored harvest continues exactly where it stopped.
    pub fn from_parts(r_phi: f64, rstar_phi: f64) -> Self {
        Self { r_phi, rstar_phi }
    }

    /// `R(Φ)` so far.
    pub fn recall_phi(&self) -> f64 {
        self.r_phi
    }

    /// `R^(Y*)(Φ)` so far.
    pub fn recall_star_phi(&self) -> f64 {
        self.rstar_phi
    }

    /// Collective recall of `Φ ∪ {q}` given the candidate's individual
    /// recall `r_q = R(q)` and redundancy estimator `r_tilde_q = R^(Ỹ)(q)`.
    ///
    /// The estimators come from random walks and are clamped into `[0, 1]`
    /// so the recursion stays a probability (template regularization with
    /// λ > 1 can push raw walk scores above 1). The redundancy term is
    /// additionally clamped to its Fréchet bound
    /// `Δ ≤ min(R(q), R(Φ))` — the overlap of two events can never exceed
    /// either event — which keeps collective recall monotone
    /// (`R(Φ ∪ {q}) ≥ max(R(Φ), R(q))`) even when the walk estimates are
    /// noisy.
    /// The returned *score* is deliberately not capped at 1: walk
    /// estimates with λ-scaled template regularization can exceed a true
    /// probability, and capping would flatten the ranking exactly when
    /// `R(Φ)` is already high (every candidate would tie at 1.0). The
    /// recursion state is clamped at [`Self::commit`] instead.
    pub fn collective_recall(&self, r_q: f64, r_tilde_q: f64) -> f64 {
        let r_q = r_q.clamp(0.0, 1.0);
        let r_tilde = r_tilde_q.clamp(0.0, 1.0);
        let delta = (r_tilde * self.r_phi).min(r_q).min(self.r_phi);
        (self.r_phi + r_q - delta).max(0.0)
    }

    /// Collective recall w.r.t. Y*: since Ω(Φ) ≡ PE and Y* marks every
    /// page relevant, Ỹ* coincides with Y*, so `Δ* = R^(Y*)(q) · R^(Y*)(Φ)`.
    /// Uncapped like [`Self::collective_recall`].
    pub fn collective_recall_star(&self, rstar_q: f64) -> f64 {
        let r = rstar_q.clamp(0.0, 1.0);
        (self.rstar_phi + r - r * self.rstar_phi).max(0.0)
    }

    /// Collective precision score (Eq. 27; proportional — the prior
    /// `P(ω ∈ Ω(Y))` is constant across candidates and dropped).
    pub fn collective_precision(&self, r_q: f64, r_tilde_q: f64, rstar_q: f64) -> f64 {
        let num = self.collective_recall(r_q, r_tilde_q);
        let den = self.collective_recall_star(rstar_q);
        if den <= f64::EPSILON {
            0.0
        } else {
            num / den
        }
    }

    /// Commit the selected query: advance `R(Φ)` and `R^(Y*)(Φ)` (the
    /// state stays a probability).
    pub fn commit(&mut self, r_q: f64, r_tilde_q: f64, rstar_q: f64) {
        self.r_phi = self.collective_recall(r_q, r_tilde_q).clamp(0.0, 1.0);
        self.rstar_phi = self.collective_recall_star(rstar_q).clamp(0.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redundant_query_adds_nothing() {
        let s = CollectiveState::new(0.4);
        // Fully redundant: R^(Ỹ)(q) = 1 ⇒ Δ = R(Φ), so the gain is only
        // R(q) − R(Φ)... with r_q = 0.4 = r_phi the collective stays 0.4.
        let cr = s.collective_recall(0.4, 1.0);
        assert!((cr - 0.4).abs() < 1e-12);
    }

    #[test]
    fn novel_query_adds_its_full_recall() {
        let s = CollectiveState::new(0.4);
        let cr = s.collective_recall(0.3, 0.0);
        assert!((cr - 0.7).abs() < 1e-12);
    }

    #[test]
    fn collective_recall_is_monotone_in_novelty() {
        let s = CollectiveState::new(0.5);
        let high_overlap = s.collective_recall(0.3, 0.9);
        let low_overlap = s.collective_recall(0.3, 0.1);
        assert!(low_overlap > high_overlap);
    }

    #[test]
    fn clamping_keeps_state_a_probability() {
        let mut s = CollectiveState::new(0.9);
        // Inflated walk score: the *score* may exceed 1 (ranking info)…
        let cr = s.collective_recall(5.0, 0.0);
        assert!((0.9..=1.9).contains(&cr), "input r_q is clamped to 1 first");
        let cp = s.collective_precision(0.5, 0.0, 0.0);
        assert!(cp.is_finite());
        // …but the committed state stays within [0, 1].
        s.commit(5.0, 0.0, 5.0);
        assert!(s.recall_phi() <= 1.0);
        assert!(s.recall_star_phi() <= 1.0);
    }

    #[test]
    fn commit_advances_state() {
        let mut s = CollectiveState::new(0.2);
        s.commit(0.3, 0.0, 0.5);
        assert!((s.recall_phi() - 0.5).abs() < 1e-12);
        assert!((s.recall_star_phi() - (0.2 + 0.5 - 0.5 * 0.2)).abs() < 1e-12);
        // Repeated commits keep the state in [0,1].
        for _ in 0..20 {
            s.commit(0.9, 0.1, 0.9);
        }
        assert!(s.recall_phi() <= 1.0);
        assert!(s.recall_star_phi() <= 1.0);
    }

    #[test]
    fn precision_prefers_focused_novelty_over_broad_novelty() {
        // The paper's Fig. 7 intuition: q3 (novel relevant coverage, no
        // irrelevant pages) must beat q4 (same relevant coverage, more
        // irrelevant pages) in collective precision.
        let s = CollectiveState::new(0.5);
        let q3 = s.collective_precision(0.5, 0.0, 0.3);
        let q4 = s.collective_precision(0.5, 0.0, 0.7);
        assert!(q3 > q4);
    }

    #[test]
    fn worked_fig7_example_ordering() {
        // Fig. 7 of the paper: target = Marc Snir, Φ = {q1, q5} has
        // gathered {p1, p2, p3, p6}, with relevant pages Ω(Y) =
        // {p1..p4}. Exact per-candidate quantities:
        //   q2 retrieves {p1,p2}:      R = 0.5,  R* = 2/6, R^(Ỹ) = 2/3
        //   q3 retrieves {p3,p4}:      R = 0.5,  R* = 2/6, R^(Ỹ) = 1/3
        //   q4 retrieves {p4,p5,p6}:   R = 0.25, R* = 3/6, R^(Ỹ) = 0
        // with R(Φ) = 3/4 and R^(Y*)(Φ) = 4/6. The paper's table says the
        // best choice is q3 for collective precision and q3/q4 for
        // collective recall; our estimators must reproduce exactly that.
        let mut s = CollectiveState::new(0.75);
        // Force the Y* side of the state to 4/6 by committing nothing on Y
        // (construct directly through commit of a no-op is messy; emulate
        // with a fresh state and manual fields via the public API).
        s.rstar_phi = 4.0 / 6.0;

        let recall_q2 = s.collective_recall(0.5, 2.0 / 3.0);
        let recall_q3 = s.collective_recall(0.5, 1.0 / 3.0);
        let recall_q4 = s.collective_recall(0.25, 0.0);
        assert!(recall_q3 > recall_q2, "q3 {recall_q3} vs q2 {recall_q2}");
        assert!(recall_q4 > recall_q2, "q4 {recall_q4} vs q2 {recall_q2}");

        let prec_q2 = s.collective_precision(0.5, 2.0 / 3.0, 2.0 / 6.0);
        let prec_q3 = s.collective_precision(0.5, 1.0 / 3.0, 2.0 / 6.0);
        let prec_q4 = s.collective_precision(0.25, 0.0, 3.0 / 6.0);
        assert!(
            prec_q3 > prec_q2 && prec_q3 > prec_q4,
            "q3 must maximize collective precision: q2={prec_q2} q3={prec_q3} q4={prec_q4}"
        );
    }
}
