//! A fast, non-cryptographic hasher for hot-path lookup tables.
//!
//! The selection loop hashes thousands of small keys per step — interned
//! symbol bags ([`crate::Query`], [`crate::Template`]) and short `u64`
//! structural fingerprints — where SipHash's per-key setup dominates the
//! actual mixing. This is the classic multiply-rotate polynomial hash
//! (the `FxHash` scheme from the Firefox/rustc lineage): one rotate, one
//! xor, one multiply per word. It is *not* DoS-resistant, so it is only
//! used for tables keyed by data we generate ourselves, never by
//! attacker-controlled input, and only where iteration order is never
//! observed (lookup/insert-only tables, or maps whose contents are
//! sorted before use).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplier close to 2^64 / φ, so successive words diffuse across
/// the full word before truncation.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-shot polynomial hasher; see module docs for the contract.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Tag the free top byte with the tail length so a short
            // tail can never alias a full chunk of the same bytes.
            buf[7] = rest.len() as u8 | 0x80;
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.mix(i as u64);
        self.mix((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; plugs into `HashMap::default()`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_bytes(b: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(b);
        h.finish()
    }

    #[test]
    fn distinct_small_keys_do_not_collide() {
        let mut seen = std::collections::HashSet::new();
        for a in 0u32..64 {
            for b in 0u32..64 {
                let mut h = FxHasher::default();
                h.write_u32(a);
                h.write_u32(b);
                assert!(seen.insert(h.finish()), "collision at ({a}, {b})");
            }
        }
    }

    #[test]
    fn byte_stream_tail_is_significant() {
        // Partial trailing chunks must feed the state: keys differing
        // only in the last byte (or only in length) hash apart.
        assert_ne!(hash_bytes(b"abcdefgh1"), hash_bytes(b"abcdefgh2"));
        assert_ne!(hash_bytes(b"abcdefgh"), hash_bytes(b"abcdefgh\0"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
    }

    #[test]
    fn map_round_trips_queries() {
        let mut m: FxHashMap<Vec<u64>, usize> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(vec![i, i * 31, i ^ 0xdead], i as usize);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&vec![i, i * 31, i ^ 0xdead]), Some(&(i as usize)));
        }
    }
}
