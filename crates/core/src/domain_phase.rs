//! The domain phase (paper Sect. IV-B): learn template utilities from the
//! pages of peer entities, once per domain and aspect.
//!
//! A single reinforcement graph is built over all domain pages PD, their
//! enumerated queries QD and the templates TD abstracting those queries;
//! the fixpoint (Eq. 19) is then solved per aspect — the graph structure is
//! aspect-independent, only the page regularization changes — and per
//! utility (precision and recall), yielding `{U_D(t) | t ∈ T_D}` plus the
//! per-query domain utilities that the `+q` ablation baselines use.
//!
//! Page–query edges are exact bag containment (a page is retrievable by
//! every query whose words it contains with multiplicity), computed via an
//! inverted index over the domain pages.

use crate::candidates::{page_queries, StopwordCache};
use crate::config::L2qConfig;
use crate::query::Query;
use crate::template::{templates_of, Template};
use l2q_aspect::RelevanceOracle;
use l2q_corpus::{AspectId, Corpus, EntityId};
use l2q_graph::{solve, GraphBuilder, Regularization, UtilityKind};
use l2q_retrieval::{DocId, InvertedIndex};
use std::collections::{HashMap, HashSet};

/// Precision and recall utility of one vertex.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct UtilityPair {
    /// Probabilistic precision P.
    pub precision: f64,
    /// Probabilistic recall R.
    pub recall: f64,
}

/// Per-aspect outputs of the domain phase.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct AspectDomainData {
    /// `P_D(q)` per domain-query index.
    pub query_precision: Vec<f64>,
    /// `R_D(q)` per domain-query index.
    pub query_recall: Vec<f64>,
    /// `P_D(t)` per template index.
    pub template_precision: Vec<f64>,
    /// `R_D(t)` per template index.
    pub template_recall: Vec<f64>,
    /// Per template: `(relevant pages covered, total pages covered)` across
    /// the domain — raw harvest statistics for the HR baseline.
    pub template_harvest: Vec<(u32, u32)>,
}

/// The learned domain model: template utilities (the paper's domain-phase
/// output), domain query statistics and the frequent-query candidate pool.
#[derive(Debug, Default)]
pub struct DomainModel {
    queries: Vec<Query>,
    query_index: HashMap<Query, u32>,
    templates: Vec<Template>,
    template_index: HashMap<Template, u32>,
    /// Distinct-entity support per query.
    support: Vec<u32>,
    /// Query indices with support ≥ threshold, most supported first.
    frequent: Vec<u32>,
    per_aspect: Vec<AspectDomainData>,
    /// `R*_D(t)`: template recall when *every* domain page counts as
    /// relevant (aspect-independent). Regularizes the entity phase's
    /// Y*-walk so the collective-precision denominator sees the same
    /// domain knowledge as its numerator.
    template_recall_star: Vec<f64>,
    n_domain_entities: usize,
}

impl DomainModel {
    /// Number of distinct domain queries.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Number of distinct templates.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// Number of domain entities the model was learned from.
    pub fn domain_entity_count(&self) -> usize {
        self.n_domain_entities
    }

    /// Domain utilities of a template for an aspect, if the template was
    /// seen in the domain.
    pub fn template_utility(&self, aspect: AspectId, t: &Template) -> Option<UtilityPair> {
        let &i = self.template_index.get(t)?;
        let d = &self.per_aspect[aspect.index()];
        Some(UtilityPair {
            precision: d.template_precision[i as usize],
            recall: d.template_recall[i as usize],
        })
    }

    /// Domain utilities of a query for an aspect, if seen in the domain.
    pub fn query_utility(&self, aspect: AspectId, q: &Query) -> Option<UtilityPair> {
        let &i = self.query_index.get(q)?;
        let d = &self.per_aspect[aspect.index()];
        Some(UtilityPair {
            precision: d.query_precision[i as usize],
            recall: d.query_recall[i as usize],
        })
    }

    /// Raw harvest statistics of a template (HR baseline).
    pub fn template_harvest(&self, aspect: AspectId, t: &Template) -> Option<(u32, u32)> {
        let &i = self.template_index.get(t)?;
        Some(self.per_aspect[aspect.index()].template_harvest[i as usize])
    }

    /// `R*_D(t)`: the template's domain recall under Y* (every page
    /// relevant), if the template was seen in the domain.
    pub fn template_recall_star(&self, t: &Template) -> Option<f64> {
        let &i = self.template_index.get(t)?;
        self.template_recall_star.get(i as usize).copied()
    }

    /// The frequent domain queries (entity-phase candidate pool), most
    /// supported first.
    pub fn frequent_queries(&self) -> impl Iterator<Item = &Query> {
        self.frequent.iter().map(|&i| &self.queries[i as usize])
    }

    /// Rebuild a model from its parts (used by portable import).
    pub(crate) fn from_parts(
        queries: Vec<Query>,
        templates: Vec<Template>,
        support: Vec<u32>,
        frequent: Vec<u32>,
        per_aspect: Vec<AspectDomainData>,
        template_recall_star: Vec<f64>,
        n_domain_entities: usize,
    ) -> Self {
        let query_index = queries
            .iter()
            .enumerate()
            .map(|(i, q)| (q.clone(), i as u32))
            .collect();
        let template_index = templates
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i as u32))
            .collect();
        Self {
            queries,
            query_index,
            templates,
            template_index,
            support,
            frequent,
            per_aspect,
            template_recall_star,
            n_domain_entities,
        }
    }

    /// Raw query list (portable export).
    pub(crate) fn queries_raw(&self) -> &[Query] {
        &self.queries
    }

    /// Raw template list (portable export).
    pub(crate) fn templates_raw(&self) -> &[Template] {
        &self.templates
    }

    /// Raw support vector (portable export).
    pub(crate) fn support_raw(&self) -> &[u32] {
        &self.support
    }

    /// Raw frequent indices (portable export).
    pub(crate) fn frequent_raw(&self) -> &[u32] {
        &self.frequent
    }

    /// Raw per-aspect data (portable export).
    pub(crate) fn per_aspect_raw(&self) -> &[AspectDomainData] {
        &self.per_aspect
    }

    /// Raw Y* template recall (portable export).
    pub(crate) fn template_recall_star_raw(&self) -> &[f64] {
        &self.template_recall_star
    }

    /// Entity support of a query (0 if unseen).
    pub fn query_support(&self, q: &Query) -> u32 {
        self.query_index
            .get(q)
            .map(|&i| self.support[i as usize])
            .unwrap_or(0)
    }

    /// The `k` *frequent* domain queries with the best domain-phase
    /// utility for an aspect (`by_precision` picks P, else R) — the `+q`
    /// baselines' ranking. Restricting to the frequent pool mirrors the
    /// paper's ≥50-entity support threshold and keeps out one-page
    /// overfit queries whose walk utility is spuriously perfect. Ties
    /// break toward higher support then query order.
    pub fn best_queries(&self, aspect: AspectId, by_precision: bool, k: usize) -> Vec<Query> {
        let d = &self.per_aspect[aspect.index()];
        let score = |i: usize| {
            if by_precision {
                d.query_precision[i]
            } else {
                d.query_recall[i]
            }
        };
        let mut idx: Vec<usize> = self.frequent.iter().map(|&i| i as usize).collect();
        idx.sort_by(|&a, &b| {
            score(b)
                .partial_cmp(&score(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| self.support[b].cmp(&self.support[a]))
                .then_with(|| a.cmp(&b))
        });
        idx.into_iter()
            .take(k)
            .map(|i| self.queries[i].clone())
            .collect()
    }
}

/// Learn the domain model from the pages of `domain_entities`.
pub fn learn_domain(
    corpus: &Corpus,
    domain_entities: &[EntityId],
    oracle: &RelevanceOracle,
    cfg: &L2qConfig,
) -> DomainModel {
    let mut stops = StopwordCache::new();

    // Domain pages in a dense local order.
    let mut pages = Vec::new();
    for &e in domain_entities {
        pages.extend(corpus.pages_of(e).iter());
    }
    let n_pages = pages.len();
    if n_pages == 0 {
        return DomainModel::default();
    }

    // Enumerate queries, track per-entity support.
    let mut queries: Vec<Query> = Vec::new();
    let mut query_index: HashMap<Query, u32> = HashMap::new();
    let mut support: Vec<u32> = Vec::new();
    let mut last_entity: Vec<u32> = Vec::new();
    for page in &pages {
        let owner = page.entity.0;
        for q in page_queries(corpus, page, cfg.candidates.max_len, &mut stops) {
            let qi = *query_index.entry(q.clone()).or_insert_with(|| {
                queries.push(q);
                support.push(0);
                last_entity.push(u32::MAX);
                (queries.len() - 1) as u32
            }) as usize;
            if last_entity[qi] != owner {
                last_entity[qi] = owner;
                support[qi] += 1;
            }
        }
    }

    // Page–query containment edges via an inverted index over domain pages.
    let index = InvertedIndex::build(pages.iter().map(|p| p.bow()));
    let mut pq_edges: Vec<(u32, u32)> = Vec::new();
    for (qi, q) in queries.iter().enumerate() {
        for d in containing_docs(&index, q) {
            pq_edges.push((d.0, qi as u32));
        }
    }

    // Templates.
    let mut templates: Vec<Template> = Vec::new();
    let mut template_index: HashMap<Template, u32> = HashMap::new();
    let mut qt_edges: Vec<(u32, u32)> = Vec::new();
    for (qi, q) in queries.iter().enumerate() {
        for t in templates_of(q, corpus, cfg.template_mode) {
            let ti = *template_index.entry(t.clone()).or_insert_with(|| {
                templates.push(t);
                (templates.len() - 1) as u32
            });
            qt_edges.push((qi as u32, ti));
        }
    }

    // Per-template page coverage (for harvest statistics).
    let mut template_pages: Vec<HashSet<u32>> = vec![HashSet::new(); templates.len()];
    {
        // query → its page list.
        let mut query_pages: Vec<Vec<u32>> = vec![Vec::new(); queries.len()];
        for &(p, q) in &pq_edges {
            query_pages[q as usize].push(p);
        }
        for &(q, t) in &qt_edges {
            for &p in &query_pages[q as usize] {
                template_pages[t as usize].insert(p);
            }
        }
    }

    // Build the shared graph.
    let mut builder = GraphBuilder::new(n_pages, queries.len(), templates.len());
    for &(p, q) in &pq_edges {
        builder.page_query(p, q, 1.0);
    }
    for &(q, t) in &qt_edges {
        builder.query_template(q, t, 1.0);
    }
    let graph = builder.build();

    // Solve per aspect. The aspects are independent (each reads the
    // shared graph and its own relevance labels), so with
    // `cfg.parallel_walks` they run on scoped threads; results are
    // collected in aspect order either way, and each aspect's own solve
    // is untouched — the model is bit-identical to the serial path.
    let solve_aspect = |aspect: AspectId| -> AspectDomainData {
        let relevant: Vec<bool> = pages
            .iter()
            .map(|p| oracle.is_relevant(aspect, p.id))
            .collect();

        let preg = Regularization::precision_from_relevance(&graph, &relevant);
        let p = solve(&graph, UtilityKind::Precision, &preg, &cfg.walk);
        let rreg = Regularization::recall_from_relevance(&graph, &relevant);
        let r = solve(&graph, UtilityKind::Recall, &rreg, &cfg.walk);

        let template_harvest = template_pages
            .iter()
            .map(|pages_of_t| {
                let total = pages_of_t.len() as u32;
                let rel = pages_of_t
                    .iter()
                    .filter(|&&pi| relevant[pi as usize])
                    .count() as u32;
                (rel, total)
            })
            .collect();

        AspectDomainData {
            query_precision: p.queries.clone(),
            query_recall: r.queries.clone(),
            template_precision: p.templates,
            template_recall: r.templates,
            template_harvest,
        }
    };
    let aspects: Vec<_> = corpus.aspects().collect();
    let per_aspect: Vec<AspectDomainData> = if cfg.parallel_walks && aspects.len() > 1 {
        crossbeam::thread::scope(|scope| {
            let sa = &solve_aspect;
            let handles: Vec<_> = aspects
                .iter()
                .map(|&a| scope.spawn(move |_| sa(a)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("aspect solver panicked"))
                .collect()
        })
        .expect("crossbeam scope")
    } else {
        aspects.iter().map(|&a| solve_aspect(a)).collect()
    };

    // Aspect-independent Y* recall of templates.
    let all_relevant = vec![true; n_pages];
    let star_reg = Regularization::recall_from_relevance(&graph, &all_relevant);
    let template_recall_star = solve(&graph, UtilityKind::Recall, &star_reg, &cfg.walk).templates;

    // Frequent queries.
    let threshold = ((domain_entities.len() as f64 * cfg.candidates.min_entity_support_fraction)
        .ceil() as u32)
        .max(2);
    let mut frequent: Vec<u32> = (0..queries.len() as u32)
        .filter(|&i| support[i as usize] >= threshold)
        .collect();
    frequent.sort_by(|&a, &b| {
        support[b as usize]
            .cmp(&support[a as usize])
            .then_with(|| a.cmp(&b))
    });
    frequent.truncate(cfg.candidates.max_domain_queries);

    DomainModel {
        queries,
        query_index,
        templates,
        template_index,
        support,
        frequent,
        per_aspect,
        template_recall_star,
        n_domain_entities: domain_entities.len(),
    }
}

/// Documents of `index` containing every word of `q` with multiplicity
/// (candidate docs from the rarest word's postings, verified by tf).
pub(crate) fn containing_docs(index: &InvertedIndex, q: &Query) -> Vec<DocId> {
    let bow = l2q_text::Bow::from_words(q.words());
    let mut terms: Vec<(l2q_text::Sym, u32)> = bow.iter().collect();
    if terms.is_empty() {
        return Vec::new();
    }
    // Drive from the rarest term.
    terms.sort_by_key(|&(w, _)| index.doc_freq(w));
    let (rarest, need) = terms[0];
    let mut out = Vec::new();
    for posting in index.postings(rarest) {
        if posting.tf < need {
            continue;
        }
        let ok = terms[1..]
            .iter()
            .all(|&(w, c)| index.tf(w, posting.doc) >= c);
        if ok {
            out.push(posting.doc);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2q_corpus::{generate, researchers_domain, CorpusConfig};
    use l2q_text::Bow;

    fn setup() -> (Corpus, RelevanceOracle) {
        let c = generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap();
        let o = RelevanceOracle::from_truth(&c);
        (c, o)
    }

    fn domain_entities(c: &Corpus) -> Vec<EntityId> {
        c.entity_ids().take(c.entities.len() / 2).collect()
    }

    #[test]
    fn learns_templates_and_queries() {
        let (c, o) = setup();
        let model = learn_domain(&c, &domain_entities(&c), &o, &L2qConfig::default());
        assert!(
            model.query_count() > 100,
            "queries: {}",
            model.query_count()
        );
        assert!(
            model.template_count() > 10,
            "templates: {}",
            model.template_count()
        );
        assert!(model.frequent_queries().count() > 0);
    }

    #[test]
    fn research_templates_score_high_for_research_aspect() {
        let (c, o) = setup();
        let model = learn_domain(&c, &domain_entities(&c), &o, &L2qConfig::default());
        let research = c.aspect_by_name("RESEARCH").unwrap();
        let contact = c.aspect_by_name("CONTACT").unwrap();

        // Find a "<topic> research"-shaped template among the learned ones
        // by scanning a known generated phrase: any query of the form
        // (topic-word, "research") that occurred in the domain.
        let d = &model.per_aspect[research.index()];
        let mut best: Option<(f64, &Template)> = None;
        for (i, t) in model.templates.iter().enumerate() {
            let score = d.template_precision[i];
            if best.as_ref().map(|(s, _)| score > *s).unwrap_or(true) {
                best = Some((score, t));
            }
        }
        let (best_p_research, best_t) = best.expect("some template");
        assert!(best_p_research > 0.0);

        // The best RESEARCH-precision template should not be equally good
        // for CONTACT.
        let up = model.template_utility(contact, best_t).unwrap();
        assert!(
            best_p_research > up.precision,
            "aspect-specific template must differ across aspects"
        );
    }

    #[test]
    fn frequent_queries_have_support_above_threshold() {
        let (c, o) = setup();
        let cfg = L2qConfig::default();
        let entities = domain_entities(&c);
        let model = learn_domain(&c, &entities, &o, &cfg);
        let threshold =
            ((entities.len() as f64 * cfg.candidates.min_entity_support_fraction).ceil() as u32)
                .max(2);
        for q in model.frequent_queries() {
            assert!(model.query_support(q) >= threshold);
        }
    }

    #[test]
    fn best_queries_are_ranked_by_utility() {
        let (c, o) = setup();
        let model = learn_domain(&c, &domain_entities(&c), &o, &L2qConfig::default());
        let research = c.aspect_by_name("RESEARCH").unwrap();
        let best = model.best_queries(research, true, 10);
        assert_eq!(best.len(), 10);
        let scores: Vec<f64> = best
            .iter()
            .map(|q| model.query_utility(research, q).unwrap().precision)
            .collect();
        for w in scores.windows(2) {
            assert!(w[0] >= w[1], "not sorted: {scores:?}");
        }
    }

    #[test]
    fn containing_docs_respects_multiplicity() {
        let docs = [
            Bow::from_words(&[l2q_text::Sym(1), l2q_text::Sym(1)]),
            Bow::from_words(&[l2q_text::Sym(1), l2q_text::Sym(2)]),
        ];
        let index = InvertedIndex::build(docs.iter());
        let q = Query::new(&[l2q_text::Sym(1), l2q_text::Sym(1)]);
        let hits = containing_docs(&index, &q);
        assert_eq!(hits, vec![DocId(0)]);
        let q1 = Query::new(&[l2q_text::Sym(1)]);
        assert_eq!(containing_docs(&index, &q1).len(), 2);
        let missing = Query::new(&[l2q_text::Sym(9)]);
        assert!(containing_docs(&index, &missing).is_empty());
    }

    #[test]
    fn empty_domain_is_safe() {
        let (c, o) = setup();
        let model = learn_domain(&c, &[], &o, &L2qConfig::default());
        assert_eq!(model.query_count(), 0);
        assert_eq!(model.template_count(), 0);
    }

    #[test]
    fn domain_model_is_deterministic() {
        let (c, o) = setup();
        let e = domain_entities(&c);
        let a = learn_domain(&c, &e, &o, &L2qConfig::default());
        let b = learn_domain(&c, &e, &o, &L2qConfig::default());
        assert_eq!(a.query_count(), b.query_count());
        assert_eq!(a.template_count(), b.template_count());
        let research = c.aspect_by_name("RESEARCH").unwrap();
        assert_eq!(
            a.per_aspect[research.index()].template_precision,
            b.per_aspect[research.index()].template_precision
        );
    }
}
