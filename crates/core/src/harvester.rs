//! The iterative harvest loop (paper Fig. 1).
//!
//! Starting from the seed query, each iteration asks the selector for the
//! next query, fires it at the search engine and folds the results into
//! the current page set. The run records per-iteration snapshots so the
//! evaluation can measure cumulative quality after every query, and the
//! wall-clock time spent inside selection (the Fig. 14 "Selection" column).

use crate::candidates::StopwordCache;
use crate::config::L2qConfig;
use crate::domain_phase::DomainModel;
use crate::query::Query;
use crate::selector::{page_candidates, QuerySelector, SelectionInput};
use l2q_aspect::RelevanceOracle;
use l2q_corpus::{AspectId, Corpus, EntityId, PageId};
use l2q_retrieval::SearchEngine;
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// One iteration's outcome.
#[derive(Clone, Debug)]
pub struct IterationSnapshot {
    /// The query the selector chose.
    pub query: Query,
    /// Pages newly added by this query (not seen before).
    pub new_pages: Vec<PageId>,
    /// Cumulative gathered-page count after this iteration.
    pub gathered_after: usize,
}

/// A complete harvest run for one (entity, aspect).
#[derive(Clone, Debug)]
pub struct HarvestRecord {
    /// Entity harvested.
    pub entity: EntityId,
    /// Aspect harvested.
    pub aspect: AspectId,
    /// Pages retrieved by the seed query.
    pub seed_results: Vec<PageId>,
    /// Per-iteration snapshots (≤ `cfg.n_queries`; fewer if candidates ran
    /// out).
    pub iterations: Vec<IterationSnapshot>,
    /// All gathered pages in first-retrieval order.
    pub gathered: Vec<PageId>,
    /// Total wall-clock time spent inside `selector.select`.
    pub selection_time: Duration,
}

impl HarvestRecord {
    /// Cumulative gathered pages after `n_iters` selector iterations
    /// (0 = seed only). Clamps to the final state.
    pub fn cumulative(&self, n_iters: usize) -> Vec<PageId> {
        let mut out = self.seed_results.clone();
        for it in self.iterations.iter().take(n_iters) {
            out.extend_from_slice(&it.new_pages);
        }
        out
    }

    /// All fired queries (excluding the seed).
    pub fn queries(&self) -> impl Iterator<Item = &Query> {
        self.iterations.iter().map(|it| &it.query)
    }
}

/// The harvest driver wiring corpus, engine, oracle and domain model.
pub struct Harvester<'a> {
    /// The corpus being harvested.
    pub corpus: &'a Corpus,
    /// The search engine.
    pub engine: &'a SearchEngine<'a>,
    /// Materialized Y.
    pub oracle: &'a RelevanceOracle,
    /// Learned domain model (None disables domain awareness everywhere).
    pub domain: Option<&'a DomainModel>,
    /// Pipeline configuration.
    pub cfg: L2qConfig,
}

impl<'a> Harvester<'a> {
    /// Run one harvest for (entity, aspect) with the given selector.
    pub fn run(
        &self,
        entity: EntityId,
        aspect: AspectId,
        selector: &mut dyn QuerySelector,
    ) -> HarvestRecord {
        selector.reset();
        let mut stops = StopwordCache::new();

        let seed = Query::new(self.corpus.seed_query(entity));
        let mut fired: Vec<Query> = vec![seed.clone()];

        let mut gathered: Vec<PageId> = Vec::new();
        let mut seen: HashSet<PageId> = HashSet::new();
        let seed_results = self.engine.search(entity, seed.words());
        for p in &seed_results {
            if seen.insert(*p) {
                gathered.push(*p);
            }
        }

        let mut iterations = Vec::with_capacity(self.cfg.n_queries);
        let mut selection_time = Duration::ZERO;
        let mut barren_streak = 0usize;

        for _ in 0..self.cfg.n_queries {
            if let Some(limit) = self.cfg.stop_after_barren {
                if barren_streak >= limit {
                    break;
                }
            }
            let candidates =
                page_candidates(self.corpus, &gathered, &fired, &self.cfg, &mut stops);
            let relevant: Vec<bool> = gathered
                .iter()
                .map(|&p| self.oracle.is_relevant(aspect, p))
                .collect();
            let input = SelectionInput {
                corpus: self.corpus,
                entity,
                aspect,
                gathered: &gathered,
                relevant: &relevant,
                fired: &fired,
                page_candidates: &candidates,
                domain: self.domain,
                oracle: self.oracle,
                engine: self.engine,
                cfg: &self.cfg,
            };

            let start = Instant::now();
            let chosen = selector.select(&input);
            selection_time += start.elapsed();

            let Some(query) = chosen else { break };
            let results = self.engine.search(entity, query.words());
            let mut new_pages = Vec::new();
            for p in results {
                if seen.insert(p) {
                    gathered.push(p);
                    new_pages.push(p);
                }
            }
            fired.push(query.clone());
            if new_pages.is_empty() {
                barren_streak += 1;
            } else {
                barren_streak = 0;
            }
            iterations.push(IterationSnapshot {
                query,
                new_pages,
                gathered_after: gathered.len(),
            });
        }

        HarvestRecord {
            entity,
            aspect,
            seed_results,
            iterations,
            gathered,
            selection_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain_phase::learn_domain;
    use crate::selector::L2qSelector;
    use l2q_corpus::{generate, researchers_domain, CorpusConfig};

    struct Fixture {
        corpus: Corpus,
        oracle: RelevanceOracle,
    }

    fn fixture() -> Fixture {
        let corpus = generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap();
        let oracle = RelevanceOracle::from_truth(&corpus);
        Fixture { corpus, oracle }
    }

    #[test]
    fn harvest_runs_and_accumulates_pages() {
        let f = fixture();
        let engine = SearchEngine::with_defaults(&f.corpus);
        let cfg = L2qConfig::default();
        let harvester = Harvester {
            corpus: &f.corpus,
            engine: &engine,
            oracle: &f.oracle,
            domain: None,
            cfg,
        };
        let aspect = f.corpus.aspect_by_name("RESEARCH").unwrap();
        let mut sel = L2qSelector::precision_only();
        let rec = harvester.run(EntityId(0), aspect, &mut sel);

        assert!(!rec.seed_results.is_empty(), "seed must retrieve pages");
        assert!(
            rec.iterations.len() <= cfg.n_queries,
            "at most n_queries iterations"
        );
        // Gathered pages are distinct and owned by the entity.
        let set: HashSet<_> = rec.gathered.iter().collect();
        assert_eq!(set.len(), rec.gathered.len());
        for &p in &rec.gathered {
            assert_eq!(f.corpus.page(p).entity, EntityId(0));
        }
        // Cumulative reconstruction matches.
        assert_eq!(
            rec.cumulative(rec.iterations.len()).len(),
            rec.gathered.len()
        );
        assert_eq!(rec.cumulative(0), rec.seed_results);
    }

    #[test]
    fn fired_queries_are_never_repeated() {
        let f = fixture();
        let engine = SearchEngine::with_defaults(&f.corpus);
        let harvester = Harvester {
            corpus: &f.corpus,
            engine: &engine,
            oracle: &f.oracle,
            domain: None,
            cfg: L2qConfig::default().with_n_queries(5),
        };
        let aspect = f.corpus.aspect_by_name("CONTACT").unwrap();
        let mut sel = L2qSelector::recall_only();
        let rec = harvester.run(EntityId(2), aspect, &mut sel);
        let queries: Vec<_> = rec.queries().collect();
        let set: HashSet<_> = queries.iter().collect();
        assert_eq!(set.len(), queries.len(), "repeated query fired");
    }

    #[test]
    fn full_l2q_with_domain_runs() {
        let f = fixture();
        let engine = SearchEngine::with_defaults(&f.corpus);
        let cfg = L2qConfig::default();
        let domain_entities: Vec<EntityId> = f.corpus.entity_ids().take(4).collect();
        let dm = learn_domain(&f.corpus, &domain_entities, &f.oracle, &cfg);
        let harvester = Harvester {
            corpus: &f.corpus,
            engine: &engine,
            oracle: &f.oracle,
            domain: Some(&dm),
            cfg,
        };
        let aspect = f.corpus.aspect_by_name("RESEARCH").unwrap();
        for mut sel in [
            L2qSelector::l2qp(),
            L2qSelector::l2qr(),
            L2qSelector::l2qbal(),
        ] {
            // Harvest a non-domain entity.
            let rec = harvester.run(EntityId(6), aspect, &mut sel);
            assert!(
                !rec.iterations.is_empty(),
                "{} selected no queries",
                sel.name()
            );
            assert!(rec.gathered.len() >= rec.seed_results.len());
        }
    }

    #[test]
    fn barren_budget_stops_early() {
        let f = fixture();
        let engine = SearchEngine::with_defaults(&f.corpus);
        // A selector that always proposes a query retrieving nothing.
        struct Barren;
        impl crate::selector::QuerySelector for Barren {
            fn name(&self) -> String {
                "BARREN".into()
            }
            fn select(
                &mut self,
                input: &crate::selector::SelectionInput<'_>,
            ) -> Option<Query> {
                // A fresh symbol: never occurs in any page.
                let _ = input;
                Some(Query::new(&[l2q_text::Sym(u32::MAX - 7)]))
            }
        }
        let mut cfg = L2qConfig::default().with_n_queries(5);
        cfg.stop_after_barren = Some(2);
        let harvester = Harvester {
            corpus: &f.corpus,
            engine: &engine,
            oracle: &f.oracle,
            domain: None,
            cfg,
        };
        let aspect = f.corpus.aspect_by_name("RESEARCH").unwrap();
        let mut sel = Barren;
        let rec = harvester.run(EntityId(0), aspect, &mut sel);
        assert_eq!(
            rec.iterations.len(),
            2,
            "must stop after 2 consecutive barren queries"
        );
    }

    #[test]
    fn weighted_strategy_runs_and_interpolates() {
        use crate::selector::L2qSelector;
        let f = fixture();
        let engine = SearchEngine::with_defaults(&f.corpus);
        let harvester = Harvester {
            corpus: &f.corpus,
            engine: &engine,
            oracle: &f.oracle,
            domain: None,
            cfg: L2qConfig::default(),
        };
        let aspect = f.corpus.aspect_by_name("RESEARCH").unwrap();
        for w in [0.0, 0.5, 1.0] {
            let mut sel = L2qSelector::balanced_weighted(w);
            let rec = harvester.run(EntityId(1), aspect, &mut sel);
            assert!(!rec.iterations.is_empty(), "w={w} selected nothing");
        }
        assert_eq!(L2qSelector::balanced_weighted(0.25).name(), "L2QW(0.25)");
    }

    #[test]
    fn harvest_is_deterministic() {
        let f = fixture();
        let engine = SearchEngine::with_defaults(&f.corpus);
        let harvester = Harvester {
            corpus: &f.corpus,
            engine: &engine,
            oracle: &f.oracle,
            domain: None,
            cfg: L2qConfig::default(),
        };
        let aspect = f.corpus.aspect_by_name("AWARD").unwrap();
        let mut s1 = L2qSelector::precision_only();
        let mut s2 = L2qSelector::precision_only();
        let a = harvester.run(EntityId(3), aspect, &mut s1);
        let b = harvester.run(EntityId(3), aspect, &mut s2);
        assert_eq!(a.gathered, b.gathered);
        let qa: Vec<_> = a.queries().collect();
        let qb: Vec<_> = b.queries().collect();
        assert_eq!(qa, qb);
    }
}
