//! The iterative harvest loop (paper Fig. 1).
//!
//! Starting from the seed query, each iteration asks the selector for the
//! next query, fires it at the search engine and folds the results into
//! the current page set. The run records per-iteration snapshots so the
//! evaluation can measure cumulative quality after every query, and the
//! wall-clock time spent inside selection (the Fig. 14 "Selection" column).
//!
//! Two entry points share one implementation:
//!
//! * [`Harvester::run`] — run-to-completion, the evaluation's driver.
//! * [`HarvestState`] — a resumable session: [`HarvestState::begin`] fires
//!   the seed, each [`HarvestState::step`] fires exactly one selected
//!   query, and [`HarvestState::finish`] yields the same [`HarvestRecord`]
//!   a `run` would have produced. The serving layer schedules thousands of
//!   interleaved steps from different sessions over one shared engine, and
//!   can route the fired queries through a retrieval cache by passing a
//!   [`SearchBackend`].

use crate::candidates::{IncrementalCandidates, StopwordCache};
use crate::config::L2qConfig;
use crate::domain_phase::DomainModel;
use crate::entity_phase::EntityPhaseState;
use crate::query::Query;
use crate::selector::{page_candidates, subset_of_seed, QuerySelector, SelectionInput};
use l2q_aspect::RelevanceOracle;
use l2q_corpus::{AspectId, Corpus, EntityId, PageId};
use l2q_retrieval::{SearchBackend, SearchEngine};
use std::collections::HashSet;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Resolved-once handles into the global metrics registry, so the hot
/// step path pays a few relaxed atomics instead of a registry lookup.
struct HarvestMetrics {
    sessions: Arc<l2q_obs::Counter>,
    steps: Arc<l2q_obs::Counter>,
    queries_fired: Arc<l2q_obs::Counter>,
    pages_gained: Arc<l2q_obs::Counter>,
    step_seconds: Arc<l2q_obs::Histogram>,
    select_seconds: Arc<l2q_obs::Histogram>,
    search_seconds: Arc<l2q_obs::Histogram>,
    candidates: Arc<l2q_obs::Histogram>,
}

fn harvest_metrics() -> &'static HarvestMetrics {
    static M: OnceLock<HarvestMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let reg = l2q_obs::global();
        HarvestMetrics {
            sessions: reg.counter("harvest_sessions_total"),
            steps: reg.counter("harvest_steps_total"),
            queries_fired: reg.counter("harvest_queries_fired_total"),
            pages_gained: reg.counter("harvest_pages_gained_total"),
            step_seconds: reg.histogram("harvest_step_seconds"),
            select_seconds: reg.histogram("harvest_select_seconds"),
            search_seconds: reg.histogram("harvest_search_seconds"),
            candidates: reg.histogram_with_bounds(
                "harvest_candidates",
                l2q_obs::Histogram::counts().bounds().to_vec(),
            ),
        }
    })
}

/// One iteration's outcome.
#[derive(Clone, Debug)]
pub struct IterationSnapshot {
    /// The query the selector chose.
    pub query: Query,
    /// Pages newly added by this query (not seen before).
    pub new_pages: Vec<PageId>,
    /// Cumulative gathered-page count after this iteration.
    pub gathered_after: usize,
}

/// A complete harvest run for one (entity, aspect).
#[derive(Clone, Debug)]
pub struct HarvestRecord {
    /// Entity harvested.
    pub entity: EntityId,
    /// Aspect harvested.
    pub aspect: AspectId,
    /// Pages retrieved by the seed query.
    pub seed_results: Vec<PageId>,
    /// Per-iteration snapshots (≤ `cfg.n_queries`; fewer if candidates ran
    /// out).
    pub iterations: Vec<IterationSnapshot>,
    /// All gathered pages in first-retrieval order.
    pub gathered: Vec<PageId>,
    /// Total wall-clock time spent inside `selector.select`.
    pub selection_time: Duration,
}

impl HarvestRecord {
    /// Cumulative gathered pages after `n_iters` selector iterations
    /// (0 = seed only). Clamps to the final state.
    pub fn cumulative(&self, n_iters: usize) -> Vec<PageId> {
        let mut out = self.seed_results.clone();
        for it in self.iterations.iter().take(n_iters) {
            out.extend_from_slice(&it.new_pages);
        }
        out
    }

    /// All fired queries (excluding the seed).
    pub fn queries(&self) -> impl Iterator<Item = &Query> {
        self.iterations.iter().map(|it| &it.query)
    }
}

/// The harvest driver wiring corpus, engine, oracle and domain model.
pub struct Harvester<'a> {
    /// The corpus being harvested.
    pub corpus: &'a Corpus,
    /// The search engine.
    pub engine: &'a SearchEngine,
    /// Materialized Y.
    pub oracle: &'a RelevanceOracle,
    /// Learned domain model (None disables domain awareness everywhere).
    pub domain: Option<&'a DomainModel>,
    /// Pipeline configuration.
    pub cfg: L2qConfig,
}

impl<'a> Harvester<'a> {
    /// Run one harvest for (entity, aspect) with the given selector.
    pub fn run(
        &self,
        entity: EntityId,
        aspect: AspectId,
        selector: &mut dyn QuerySelector,
    ) -> HarvestRecord {
        selector.reset();
        let mut state = HarvestState::begin(self, entity, aspect);
        while !state.is_finished() {
            state.step(self, selector);
        }
        state.finish()
    }
}

/// Why a harvest session stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The `n_queries` budget is spent.
    BudgetExhausted,
    /// The selector returned no query (candidates ran out).
    SelectorExhausted,
    /// `stop_after_barren` consecutive queries added no new page.
    BarrenBudget,
}

impl StopReason {
    /// A stable snake_case name (used as a metric label and in the wire
    /// protocol's session-state strings).
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::BudgetExhausted => "budget_exhausted",
            StopReason::SelectorExhausted => "selector_exhausted",
            StopReason::BarrenBudget => "barren_budget",
        }
    }

    /// Parse the [`StopReason::as_str`] form back (checkpoint import).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "budget_exhausted" => Some(StopReason::BudgetExhausted),
            "selector_exhausted" => Some(StopReason::SelectorExhausted),
            "barren_budget" => Some(StopReason::BarrenBudget),
            _ => None,
        }
    }
}

/// Outcome of one [`HarvestState::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// One query fired, adding `new_pages` previously unseen pages.
    Advanced {
        /// Number of pages first retrieved by this step's query.
        new_pages: usize,
    },
    /// The session is complete (already was, or became so this call).
    Finished(StopReason),
}

/// A resumable harvest for one (entity, aspect): the loop of
/// [`Harvester::run`], unrolled so a scheduler can interleave steps from
/// many sessions.
#[derive(Debug)]
pub struct HarvestState {
    pub(crate) entity: EntityId,
    pub(crate) aspect: AspectId,
    pub(crate) seed_results: Vec<PageId>,
    pub(crate) fired: Vec<Query>,
    pub(crate) gathered: Vec<PageId>,
    pub(crate) seen: HashSet<PageId>,
    pub(crate) iterations: Vec<IterationSnapshot>,
    pub(crate) selection_time: Duration,
    pub(crate) barren_streak: usize,
    pub(crate) stops: StopwordCache,
    /// Cross-step candidate enumerator (gathered pages only ever grow by
    /// appending, so incremental enumeration is exact).
    pub(crate) enumerated: IncrementalCandidates,
    /// Cross-step entity-phase cache handed to the selector when
    /// `cfg.incremental_phase` is on. `Mutex` (never contended — locked
    /// once per step) rather than `RefCell` to keep the state `Sync`.
    pub(crate) phase: Mutex<EntityPhaseState>,
    pub(crate) finished: Option<StopReason>,
}

impl HarvestState {
    /// Open a session and fire the seed query through the harvester's own
    /// engine. Does not touch any selector; callers driving a fresh
    /// selector should `reset()` it first (as [`Harvester::run`] does).
    pub fn begin(h: &Harvester<'_>, entity: EntityId, aspect: AspectId) -> Self {
        Self::begin_with(h, entity, aspect, h.engine)
    }

    /// Open a session, firing the seed through an explicit backend (e.g. a
    /// shared retrieval cache).
    pub fn begin_with(
        h: &Harvester<'_>,
        entity: EntityId,
        aspect: AspectId,
        search: &dyn SearchBackend,
    ) -> Self {
        let m = harvest_metrics();
        m.sessions.inc();
        m.queries_fired.inc(); // the seed query below
        let seed = Query::new(h.corpus.seed_query(entity));
        let seed_results = search.search(entity, seed.words());
        let mut gathered = Vec::new();
        let mut seen = HashSet::new();
        for p in &seed_results {
            if seen.insert(*p) {
                gathered.push(*p);
            }
        }
        Self {
            entity,
            aspect,
            seed_results,
            fired: vec![seed],
            gathered,
            seen,
            iterations: Vec::with_capacity(h.cfg.n_queries),
            selection_time: Duration::ZERO,
            barren_streak: 0,
            stops: StopwordCache::new(),
            enumerated: IncrementalCandidates::new(),
            phase: Mutex::new(EntityPhaseState::new()),
            finished: None,
        }
    }

    /// Select and fire exactly one query through the harvester's engine.
    pub fn step(&mut self, h: &Harvester<'_>, selector: &mut dyn QuerySelector) -> StepOutcome {
        self.step_with(h, selector, h.engine)
    }

    /// Select and fire exactly one query, routing the fire through an
    /// explicit backend. Selector-internal probing still uses `h.engine`
    /// directly (selectors inspect index statistics, not cached result
    /// lists), so a caching backend changes no outcome — only cost.
    pub fn step_with(
        &mut self,
        h: &Harvester<'_>,
        selector: &mut dyn QuerySelector,
        search: &dyn SearchBackend,
    ) -> StepOutcome {
        if let Some(reason) = self.finished {
            return StepOutcome::Finished(reason);
        }
        if self.iterations.len() >= h.cfg.n_queries {
            return self.finish_with(StopReason::BudgetExhausted);
        }
        if let Some(limit) = h.cfg.stop_after_barren {
            if self.barren_streak >= limit {
                return self.finish_with(StopReason::BarrenBudget);
            }
        }
        let m = harvest_metrics();
        let step_timer = l2q_obs::SpanTimer::start_named(m.step_seconds.clone(), "harvest_step");

        let candidates = if h.cfg.incremental_phase {
            // Enumerate only the pages gathered since the last step (the
            // result is identical to a full re-enumeration — dedup is
            // first-occurrence over pages in order), then apply the same
            // fired/seed-subset filters as `page_candidates`.
            let pages = self.gathered.iter().map(|&p| h.corpus.page(p));
            self.enumerated
                .update(h.corpus, pages, h.cfg.candidates.max_len, &mut self.stops);
            let fired_set: HashSet<&Query> = self.fired.iter().collect();
            let seed = self.fired.first();
            self.enumerated
                .queries()
                .iter()
                .filter(|q| !fired_set.contains(*q))
                .filter(|q| {
                    seed.map(|s| !subset_of_seed(q, s, h.corpus))
                        .unwrap_or(true)
                })
                .cloned()
                .collect()
        } else {
            page_candidates(
                h.corpus,
                &self.gathered,
                &self.fired,
                &h.cfg,
                &mut self.stops,
            )
        };
        let relevant: Vec<bool> = self
            .gathered
            .iter()
            .map(|&p| h.oracle.is_relevant(self.aspect, p))
            .collect();
        let input = SelectionInput {
            corpus: h.corpus,
            entity: self.entity,
            aspect: self.aspect,
            gathered: &self.gathered,
            relevant: &relevant,
            fired: &self.fired,
            page_candidates: &candidates,
            domain: h.domain,
            oracle: h.oracle,
            engine: h.engine,
            cfg: &h.cfg,
            phase_state: h.cfg.incremental_phase.then_some(&self.phase),
        };

        let select_span =
            l2q_obs::SpanTimer::start_named(m.select_seconds.clone(), "harvest_select");
        let chosen = selector.select(&input);
        let select_elapsed = select_span.finish();
        self.selection_time += select_elapsed;
        m.candidates.record(candidates.len() as f64);

        let Some(query) = chosen else {
            return self.finish_with(StopReason::SelectorExhausted);
        };
        let search_span =
            l2q_obs::SpanTimer::start_named(m.search_seconds.clone(), "harvest_search");
        let results = search.search(self.entity, query.words());
        let search_elapsed = search_span.finish();
        m.queries_fired.inc();
        let mut new_pages = Vec::new();
        for p in results {
            if self.seen.insert(p) {
                self.gathered.push(p);
                new_pages.push(p);
            }
        }
        self.fired.push(query.clone());
        if new_pages.is_empty() {
            self.barren_streak += 1;
        } else {
            self.barren_streak = 0;
        }
        let n_new = new_pages.len();
        m.steps.inc();
        m.pages_gained.add(n_new as u64);
        if l2q_obs::events_enabled() {
            l2q_obs::emit(
                "harvest_step",
                &[
                    ("entity", self.entity.0.into()),
                    ("aspect", self.aspect.0.into()),
                    ("step", self.iterations.len().into()),
                    ("query", query.render(&h.corpus.symbols).into()),
                    ("candidates", candidates.len().into()),
                    ("new_pages", n_new.into()),
                    ("gathered", self.gathered.len().into()),
                    ("select_us", (select_elapsed.as_micros() as u64).into()),
                    ("search_us", (search_elapsed.as_micros() as u64).into()),
                ],
            );
        }
        drop(step_timer); // record the step's full wall-clock
        self.iterations.push(IterationSnapshot {
            query,
            new_pages,
            gathered_after: self.gathered.len(),
        });
        StepOutcome::Advanced { new_pages: n_new }
    }

    fn finish_with(&mut self, reason: StopReason) -> StepOutcome {
        self.finished = Some(reason);
        l2q_obs::global()
            .counter_with("harvest_stops_total", &[("reason", reason.as_str())])
            .inc();
        StepOutcome::Finished(reason)
    }

    /// Whether the session can make no further progress.
    pub fn is_finished(&self) -> bool {
        self.finished.is_some()
    }

    /// Why the session stopped, once finished.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.finished
    }

    /// Entity under harvest.
    pub fn entity(&self) -> EntityId {
        self.entity
    }

    /// Aspect under harvest.
    pub fn aspect(&self) -> AspectId {
        self.aspect
    }

    /// Selector iterations completed so far.
    pub fn steps_taken(&self) -> usize {
        self.iterations.len()
    }

    /// Pages gathered so far (seed included), first-retrieval order.
    pub fn gathered(&self) -> &[PageId] {
        &self.gathered
    }

    /// Per-iteration snapshots so far.
    pub fn iterations(&self) -> &[IterationSnapshot] {
        &self.iterations
    }

    /// Cumulative wall-clock spent inside query selection so far.
    pub fn selection_time(&self) -> Duration {
        self.selection_time
    }

    /// Close the session into the record [`Harvester::run`] would return.
    pub fn finish(self) -> HarvestRecord {
        HarvestRecord {
            entity: self.entity,
            aspect: self.aspect,
            seed_results: self.seed_results,
            iterations: self.iterations,
            gathered: self.gathered,
            selection_time: self.selection_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain_phase::learn_domain;
    use crate::selector::L2qSelector;
    use l2q_corpus::{generate, researchers_domain, CorpusConfig};
    use std::sync::Arc;

    struct Fixture {
        corpus: Arc<Corpus>,
        oracle: RelevanceOracle,
    }

    fn fixture() -> Fixture {
        let corpus = Arc::new(generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap());
        let oracle = RelevanceOracle::from_truth(&corpus);
        Fixture { corpus, oracle }
    }

    #[test]
    fn harvest_runs_and_accumulates_pages() {
        let f = fixture();
        let engine = SearchEngine::with_defaults(f.corpus.clone());
        let cfg = L2qConfig::default();
        let harvester = Harvester {
            corpus: &f.corpus,
            engine: &engine,
            oracle: &f.oracle,
            domain: None,
            cfg,
        };
        let aspect = f.corpus.aspect_by_name("RESEARCH").unwrap();
        let mut sel = L2qSelector::precision_only();
        let rec = harvester.run(EntityId(0), aspect, &mut sel);

        assert!(!rec.seed_results.is_empty(), "seed must retrieve pages");
        assert!(
            rec.iterations.len() <= cfg.n_queries,
            "at most n_queries iterations"
        );
        // Gathered pages are distinct and owned by the entity.
        let set: HashSet<_> = rec.gathered.iter().collect();
        assert_eq!(set.len(), rec.gathered.len());
        for &p in &rec.gathered {
            assert_eq!(f.corpus.page(p).entity, EntityId(0));
        }
        // Cumulative reconstruction matches.
        assert_eq!(
            rec.cumulative(rec.iterations.len()).len(),
            rec.gathered.len()
        );
        assert_eq!(rec.cumulative(0), rec.seed_results);
    }

    #[test]
    fn fired_queries_are_never_repeated() {
        let f = fixture();
        let engine = SearchEngine::with_defaults(f.corpus.clone());
        let harvester = Harvester {
            corpus: &f.corpus,
            engine: &engine,
            oracle: &f.oracle,
            domain: None,
            cfg: L2qConfig::default().with_n_queries(5),
        };
        let aspect = f.corpus.aspect_by_name("CONTACT").unwrap();
        let mut sel = L2qSelector::recall_only();
        let rec = harvester.run(EntityId(2), aspect, &mut sel);
        let queries: Vec<_> = rec.queries().collect();
        let set: HashSet<_> = queries.iter().collect();
        assert_eq!(set.len(), queries.len(), "repeated query fired");
    }

    #[test]
    fn full_l2q_with_domain_runs() {
        let f = fixture();
        let engine = SearchEngine::with_defaults(f.corpus.clone());
        let cfg = L2qConfig::default();
        let domain_entities: Vec<EntityId> = f.corpus.entity_ids().take(4).collect();
        let dm = learn_domain(&f.corpus, &domain_entities, &f.oracle, &cfg);
        let harvester = Harvester {
            corpus: &f.corpus,
            engine: &engine,
            oracle: &f.oracle,
            domain: Some(&dm),
            cfg,
        };
        let aspect = f.corpus.aspect_by_name("RESEARCH").unwrap();
        for mut sel in [
            L2qSelector::l2qp(),
            L2qSelector::l2qr(),
            L2qSelector::l2qbal(),
        ] {
            // Harvest a non-domain entity.
            let rec = harvester.run(EntityId(6), aspect, &mut sel);
            assert!(
                !rec.iterations.is_empty(),
                "{} selected no queries",
                sel.name()
            );
            assert!(rec.gathered.len() >= rec.seed_results.len());
        }
    }

    #[test]
    fn barren_budget_stops_early() {
        let f = fixture();
        let engine = SearchEngine::with_defaults(f.corpus.clone());
        // A selector that always proposes a query retrieving nothing.
        struct Barren;
        impl crate::selector::QuerySelector for Barren {
            fn name(&self) -> String {
                "BARREN".into()
            }
            fn select(&mut self, input: &crate::selector::SelectionInput<'_>) -> Option<Query> {
                // A fresh symbol: never occurs in any page.
                let _ = input;
                Some(Query::new(&[l2q_text::Sym(u32::MAX - 7)]))
            }
        }
        let mut cfg = L2qConfig::default().with_n_queries(5);
        cfg.stop_after_barren = Some(2);
        let harvester = Harvester {
            corpus: &f.corpus,
            engine: &engine,
            oracle: &f.oracle,
            domain: None,
            cfg,
        };
        let aspect = f.corpus.aspect_by_name("RESEARCH").unwrap();
        let mut sel = Barren;
        let rec = harvester.run(EntityId(0), aspect, &mut sel);
        assert_eq!(
            rec.iterations.len(),
            2,
            "must stop after 2 consecutive barren queries"
        );
    }

    #[test]
    fn weighted_strategy_runs_and_interpolates() {
        use crate::selector::L2qSelector;
        let f = fixture();
        let engine = SearchEngine::with_defaults(f.corpus.clone());
        let harvester = Harvester {
            corpus: &f.corpus,
            engine: &engine,
            oracle: &f.oracle,
            domain: None,
            cfg: L2qConfig::default(),
        };
        let aspect = f.corpus.aspect_by_name("RESEARCH").unwrap();
        for w in [0.0, 0.5, 1.0] {
            let mut sel = L2qSelector::balanced_weighted(w);
            let rec = harvester.run(EntityId(1), aspect, &mut sel);
            assert!(!rec.iterations.is_empty(), "w={w} selected nothing");
        }
        assert_eq!(L2qSelector::balanced_weighted(0.25).name(), "L2QW(0.25)");
    }

    #[test]
    fn harvest_is_deterministic() {
        let f = fixture();
        let engine = SearchEngine::with_defaults(f.corpus.clone());
        let harvester = Harvester {
            corpus: &f.corpus,
            engine: &engine,
            oracle: &f.oracle,
            domain: None,
            cfg: L2qConfig::default(),
        };
        let aspect = f.corpus.aspect_by_name("AWARD").unwrap();
        let mut s1 = L2qSelector::precision_only();
        let mut s2 = L2qSelector::precision_only();
        let a = harvester.run(EntityId(3), aspect, &mut s1);
        let b = harvester.run(EntityId(3), aspect, &mut s2);
        assert_eq!(a.gathered, b.gathered);
        let qa: Vec<_> = a.queries().collect();
        let qb: Vec<_> = b.queries().collect();
        assert_eq!(qa, qb);
    }

    #[test]
    fn step_api_reproduces_run_exactly() {
        let f = fixture();
        let engine = SearchEngine::with_defaults(f.corpus.clone());
        let harvester = Harvester {
            corpus: &f.corpus,
            engine: &engine,
            oracle: &f.oracle,
            domain: None,
            cfg: L2qConfig::default(),
        };
        let aspect = f.corpus.aspect_by_name("RESEARCH").unwrap();

        let mut run_sel = L2qSelector::l2qbal();
        let via_run = harvester.run(EntityId(4), aspect, &mut run_sel);

        let mut step_sel = L2qSelector::l2qbal();
        step_sel.reset();
        let mut state = HarvestState::begin(&harvester, EntityId(4), aspect);
        let mut advanced = 0usize;
        while let StepOutcome::Advanced { .. } = state.step(&harvester, &mut step_sel) {
            advanced += 1;
            assert_eq!(state.steps_taken(), advanced);
        }
        assert!(state.is_finished());
        assert!(state.stop_reason().is_some());
        let via_steps = state.finish();

        assert_eq!(via_steps.gathered, via_run.gathered);
        assert_eq!(via_steps.seed_results, via_run.seed_results);
        let qa: Vec<_> = via_steps.queries().collect();
        let qb: Vec<_> = via_run.queries().collect();
        assert_eq!(qa, qb);
    }

    #[test]
    fn steps_record_metrics_and_stop_reason() {
        let f = fixture();
        let engine = SearchEngine::with_defaults(f.corpus.clone());
        let harvester = Harvester {
            corpus: &f.corpus,
            engine: &engine,
            oracle: &f.oracle,
            domain: None,
            cfg: L2qConfig::default().with_n_queries(3),
        };
        let aspect = f.corpus.aspect_by_name("RESEARCH").unwrap();
        let m = harvest_metrics();
        let (sessions0, steps0, fired0, pages0) = (
            m.sessions.get(),
            m.steps.get(),
            m.queries_fired.get(),
            m.pages_gained.get(),
        );
        let (step_h0, sel_h0) = (m.step_seconds.count(), m.select_seconds.count());
        let mut sel = L2qSelector::precision_only();
        let rec = harvester.run(EntityId(5), aspect, &mut sel);
        // The registry is process-global (other tests also harvest), so
        // assert growth by at least this run's contribution.
        let n = rec.iterations.len() as u64;
        assert!(n >= 1);
        assert!(m.sessions.get() > sessions0);
        assert!(m.steps.get() >= steps0 + n);
        assert!(m.queries_fired.get() > fired0 + n, "seed counts too");
        assert!(m.pages_gained.get() >= pages0);
        assert!(m.step_seconds.count() >= step_h0 + n);
        assert!(m.select_seconds.count() >= sel_h0 + n);
        // Every stop increments a reason-labeled counter.
        let stops: u64 = [
            StopReason::BudgetExhausted,
            StopReason::SelectorExhausted,
            StopReason::BarrenBudget,
        ]
        .iter()
        .map(|r| {
            l2q_obs::global()
                .counter_with("harvest_stops_total", &[("reason", r.as_str())])
                .get()
        })
        .sum();
        assert!(stops >= 1, "the finished run must have recorded a stop");
    }

    #[test]
    fn cached_backend_changes_no_outcome() {
        use l2q_retrieval::{CachedSearch, ShardedQueryCache};
        let f = fixture();
        let engine = SearchEngine::with_defaults(f.corpus.clone());
        let harvester = Harvester {
            corpus: &f.corpus,
            engine: &engine,
            oracle: &f.oracle,
            domain: None,
            cfg: L2qConfig::default(),
        };
        let aspect = f.corpus.aspect_by_name("CONTACT").unwrap();

        let mut plain_sel = L2qSelector::l2qp();
        let plain = harvester.run(EntityId(1), aspect, &mut plain_sel);

        let cache = ShardedQueryCache::new(2, 128);
        let backend = CachedSearch::new(&engine, &cache);
        let mut cached_sel = L2qSelector::l2qp();
        cached_sel.reset();
        let mut state = HarvestState::begin_with(&harvester, EntityId(1), aspect, &backend);
        while !state.is_finished() {
            state.step_with(&harvester, &mut cached_sel, &backend);
        }
        let cached = state.finish();
        assert_eq!(cached.gathered, plain.gathered);
        assert!(cache.misses() > 0, "queries must flow through the cache");
    }
}
