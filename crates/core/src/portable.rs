//! Portable (JSON) serialization of a learned [`DomainModel`].
//!
//! The domain phase "is only executed once" per domain — in production the
//! learned template utilities are an artifact worth persisting and
//! shipping. Symbols and type ids are process-local, so the portable form
//! stores *strings*: queries as word lists and templates as tagged units
//! (`word` / type name). Import re-resolves them against a corpus whose
//! tokenizer/type system matches; unresolvable entries are dropped and
//! counted so callers can detect vocabulary drift.

use crate::domain_phase::{AspectDomainData, DomainModel};
use crate::query::Query;
use crate::template::{Template, Unit};
use l2q_corpus::Corpus;
use l2q_text::Sym;
use serde::{Deserialize, Serialize};

/// One template unit in portable form.
#[derive(Serialize, Deserialize, Clone, Debug, PartialEq, Eq)]
#[serde(rename_all = "snake_case")]
pub enum PortableUnit {
    /// Literal word.
    Word(String),
    /// Type name, e.g. `topic`.
    Type(String),
}

/// The portable form of a [`DomainModel`].
#[derive(Serialize, Deserialize, Clone, Debug)]
pub struct PortableDomainModel {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Aspect names in id order (must match the importing corpus).
    pub aspects: Vec<String>,
    /// Queries as word lists (canonical order).
    pub queries: Vec<Vec<String>>,
    /// Templates as unit lists.
    pub templates: Vec<Vec<PortableUnit>>,
    /// Entity support per query.
    pub support: Vec<u32>,
    /// Frequent query indices.
    pub frequent: Vec<u32>,
    /// Per-aspect data (same shapes as [`AspectDomainData`]).
    pub per_aspect: Vec<AspectDomainData>,
    /// Y* template recall.
    pub template_recall_star: Vec<f64>,
    /// Number of domain entities the model was learned from.
    pub n_domain_entities: usize,
}

/// Errors importing a portable model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportError {
    /// Unknown format version.
    Version(u32),
    /// The JSON was malformed.
    Json(String),
    /// The aspect list does not match the corpus.
    AspectMismatch,
    /// A word did not resolve against the corpus vocabulary, in a context
    /// where dropping it would change harvest outcomes (fired queries are
    /// part of the context Φ and cannot be dropped like domain entries).
    Vocabulary(String),
    /// Structurally invalid data (bad page/entity id, malformed float
    /// bits, inconsistent step records).
    Corrupt(String),
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Version(v) => write!(f, "unsupported portable-model version {v}"),
            ImportError::Json(m) => write!(f, "malformed portable model: {m}"),
            ImportError::AspectMismatch => write!(f, "aspect list does not match the corpus"),
            ImportError::Vocabulary(w) => write!(f, "word '{w}' not in the corpus vocabulary"),
            ImportError::Corrupt(m) => write!(f, "corrupt portable state: {m}"),
        }
    }
}

impl std::error::Error for ImportError {}

/// Statistics of an import (how much vocabulary resolved).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImportStats {
    /// Queries whose every word resolved.
    pub queries_resolved: usize,
    /// Queries dropped (unknown words).
    pub queries_dropped: usize,
    /// Templates whose every unit resolved.
    pub templates_resolved: usize,
    /// Templates dropped.
    pub templates_dropped: usize,
}

impl DomainModel {
    /// Export to the portable form (strings only).
    pub fn to_portable(&self, corpus: &Corpus) -> PortableDomainModel {
        PortableDomainModel {
            version: 1,
            aspects: corpus
                .aspect_names
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
            queries: self
                .queries_raw()
                .iter()
                .map(|q| {
                    q.words()
                        .iter()
                        .map(|&w| corpus.symbols.resolve(w).to_owned())
                        .collect()
                })
                .collect(),
            templates: self
                .templates_raw()
                .iter()
                .map(|t| {
                    t.units()
                        .iter()
                        .map(|u| match u {
                            Unit::Word(w) => {
                                PortableUnit::Word(corpus.symbols.resolve(*w).to_owned())
                            }
                            Unit::Type(ty) => PortableUnit::Type(corpus.types.name(*ty).to_owned()),
                        })
                        .collect()
                })
                .collect(),
            support: self.support_raw().to_vec(),
            frequent: self.frequent_raw().to_vec(),
            per_aspect: self.per_aspect_raw().to_vec(),
            template_recall_star: self.template_recall_star_raw().to_vec(),
            n_domain_entities: self.domain_entity_count(),
        }
    }

    /// Export as pretty JSON.
    pub fn to_json(&self, corpus: &Corpus) -> String {
        serde_json::to_string_pretty(&self.to_portable(corpus)).expect("serializable model")
    }

    /// Import from the portable form, resolving strings against `corpus`.
    ///
    /// Entries whose vocabulary does not resolve are dropped (with their
    /// per-aspect rows) and counted in the returned [`ImportStats`].
    pub fn from_portable(
        portable: &PortableDomainModel,
        corpus: &Corpus,
    ) -> Result<(DomainModel, ImportStats), ImportError> {
        if portable.version != 1 {
            return Err(ImportError::Version(portable.version));
        }
        let corpus_aspects: Vec<String> = corpus
            .aspect_names
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        if portable.aspects != corpus_aspects {
            return Err(ImportError::AspectMismatch);
        }

        let mut stats = ImportStats::default();

        // Resolve queries; remember the surviving original indices.
        let mut queries = Vec::new();
        let mut kept_q: Vec<usize> = Vec::new();
        for (i, words) in portable.queries.iter().enumerate() {
            let syms: Option<Vec<Sym>> = words.iter().map(|w| corpus.symbols.get(w)).collect();
            match syms {
                Some(s) if !s.is_empty() => {
                    queries.push(Query::new(&s));
                    kept_q.push(i);
                    stats.queries_resolved += 1;
                }
                _ => stats.queries_dropped += 1,
            }
        }

        let mut templates = Vec::new();
        let mut kept_t: Vec<usize> = Vec::new();
        for (i, units) in portable.templates.iter().enumerate() {
            let resolved: Option<Vec<Unit>> = units
                .iter()
                .map(|u| match u {
                    PortableUnit::Word(w) => corpus.symbols.get(w).map(Unit::Word),
                    PortableUnit::Type(ty) => corpus.types.get(ty).map(Unit::Type),
                })
                .collect();
            match resolved {
                Some(units) if !units.is_empty() => {
                    templates.push(Template::new(&units));
                    kept_t.push(i);
                    stats.templates_resolved += 1;
                }
                _ => stats.templates_dropped += 1,
            }
        }

        let support: Vec<u32> = kept_q.iter().map(|&i| portable.support[i]).collect();
        let old_to_new_q: std::collections::HashMap<usize, u32> = kept_q
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new as u32))
            .collect();
        let frequent: Vec<u32> = portable
            .frequent
            .iter()
            .filter_map(|&old| old_to_new_q.get(&(old as usize)).copied())
            .collect();

        let per_aspect: Vec<AspectDomainData> = portable
            .per_aspect
            .iter()
            .map(|d| AspectDomainData {
                query_precision: kept_q.iter().map(|&i| d.query_precision[i]).collect(),
                query_recall: kept_q.iter().map(|&i| d.query_recall[i]).collect(),
                template_precision: kept_t.iter().map(|&i| d.template_precision[i]).collect(),
                template_recall: kept_t.iter().map(|&i| d.template_recall[i]).collect(),
                template_harvest: kept_t.iter().map(|&i| d.template_harvest[i]).collect(),
            })
            .collect();
        let template_recall_star: Vec<f64> = kept_t
            .iter()
            .map(|&i| portable.template_recall_star[i])
            .collect();

        Ok((
            DomainModel::from_parts(
                queries,
                templates,
                support,
                frequent,
                per_aspect,
                template_recall_star,
                portable.n_domain_entities,
            ),
            stats,
        ))
    }

    /// Import from JSON.
    pub fn from_json(
        json: &str,
        corpus: &Corpus,
    ) -> Result<(DomainModel, ImportStats), ImportError> {
        let portable: PortableDomainModel =
            serde_json::from_str(json).map_err(|e| ImportError::Json(e.to_string()))?;
        Self::from_portable(&portable, corpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::L2qConfig;
    use crate::domain_phase::learn_domain;
    use l2q_aspect::RelevanceOracle;
    use l2q_corpus::{generate, researchers_domain, CorpusConfig, EntityId};

    fn setup() -> (Corpus, DomainModel) {
        let corpus = generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap();
        let oracle = RelevanceOracle::from_truth(&corpus);
        let entities: Vec<EntityId> = corpus.entity_ids().take(4).collect();
        let dm = learn_domain(&corpus, &entities, &oracle, &L2qConfig::default());
        (corpus, dm)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (corpus, dm) = setup();
        let json = dm.to_json(&corpus);
        let (restored, stats) = DomainModel::from_json(&json, &corpus).unwrap();
        assert_eq!(stats.queries_dropped, 0);
        assert_eq!(stats.templates_dropped, 0);
        assert_eq!(restored.query_count(), dm.query_count());
        assert_eq!(restored.template_count(), dm.template_count());
        assert_eq!(restored.domain_entity_count(), dm.domain_entity_count());

        // Spot-check utilities survive for every frequent query/template.
        let aspect = corpus.aspect_by_name("RESEARCH").unwrap();
        for q in dm.frequent_queries() {
            let a = dm.query_utility(aspect, q).unwrap();
            let b = restored.query_utility(aspect, q).unwrap();
            // JSON float round-trips can lose the last ulp.
            assert!((a.precision - b.precision).abs() < 1e-12);
            assert!((a.recall - b.recall).abs() < 1e-12);
        }
        let best_a = dm.best_queries(aspect, true, 5);
        let best_b = restored.best_queries(aspect, true, 5);
        assert_eq!(best_a, best_b);
    }

    #[test]
    fn import_rejects_wrong_version_and_aspects() {
        let (corpus, dm) = setup();
        let mut portable = dm.to_portable(&corpus);
        portable.version = 99;
        assert_eq!(
            DomainModel::from_portable(&portable, &corpus).unwrap_err(),
            ImportError::Version(99)
        );

        let mut portable = dm.to_portable(&corpus);
        portable.aspects[0] = "SOMETHING".into();
        assert_eq!(
            DomainModel::from_portable(&portable, &corpus).unwrap_err(),
            ImportError::AspectMismatch
        );

        assert!(matches!(
            DomainModel::from_json("not json", &corpus),
            Err(ImportError::Json(_))
        ));
    }

    /// The deployment scenario the portable form exists for: a model
    /// learned on one crawl is imported against a later crawl whose
    /// vocabulary has drifted (same domain spec → same aspects and type
    /// system, different generated entities → different interned words).
    /// Import must never panic: entries that no longer resolve are
    /// dropped and counted, everything else stays usable.
    #[test]
    fn cross_corpus_vocabulary_drift_drops_and_counts() {
        let (corpus_a, dm) = setup();
        let json = dm.to_json(&corpus_a);

        let mut total_dropped = 0usize;
        for seed in [7u64, 99, 12345] {
            let drifted = generate(
                &researchers_domain(),
                &CorpusConfig {
                    seed,
                    n_entities: 6, // fewer entities → smaller interned vocabulary
                    ..CorpusConfig::tiny()
                },
            )
            .unwrap();
            let (restored, stats) = DomainModel::from_json(&json, &drifted)
                .unwrap_or_else(|e| panic!("seed {seed}: import must not fail: {e}"));

            // Every exported entry is accounted for: resolved or dropped.
            assert_eq!(
                stats.queries_resolved + stats.queries_dropped,
                dm.query_count(),
                "seed {seed}: query accounting"
            );
            assert_eq!(
                stats.templates_resolved + stats.templates_dropped,
                dm.template_count(),
                "seed {seed}: template accounting"
            );
            assert_eq!(restored.query_count(), stats.queries_resolved);
            assert_eq!(restored.template_count(), stats.templates_resolved);
            // Seeds share generator vocabulary pools, so drift is partial:
            // shared pools always leave something resolvable.
            assert!(
                stats.queries_resolved > 0 || stats.templates_resolved > 0,
                "seed {seed}: shared pools should leave something resolvable"
            );
            total_dropped += stats.queries_dropped + stats.templates_dropped;

            // The surviving model is consistent: every remaining query has
            // utilities for every aspect, and ranking it does not panic.
            for aspect in drifted.aspects() {
                for q in restored.queries_raw().to_vec() {
                    assert!(restored.query_utility(aspect, &q).is_some());
                }
                let _ = restored.best_queries(aspect, true, 5);
            }
        }
        assert!(
            total_dropped > 0,
            "entity-name drift across three seeds must drop something"
        );
    }

    #[test]
    fn unknown_vocabulary_is_dropped_and_counted() {
        let (corpus, dm) = setup();
        let mut portable = dm.to_portable(&corpus);
        let before = portable.queries.len();
        portable.queries.push(vec!["zzz_never_interned".into()]);
        portable.support.push(1);
        for d in &mut portable.per_aspect {
            d.query_precision.push(0.5);
            d.query_recall.push(0.5);
        }
        let (restored, stats) = DomainModel::from_portable(&portable, &corpus).unwrap();
        assert_eq!(stats.queries_dropped, 1);
        assert_eq!(restored.query_count(), before);
    }
}
