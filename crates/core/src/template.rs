//! Templates — type-abstracted queries (paper Def. 1 and Sect. IV-A).
//!
//! A template is a sequence of units, each either a word or a type; a
//! template *abstracts* a query when literal units match exactly and type
//! units contain the query's word. Templates are the bridge across entity
//! variation: `hpc ijhpca` (Snir), `data mining tkde` (Yu) and `ai jmlr`
//! (Ng) all abstract to `⟨topic⟩ ⟨venue⟩`.
//!
//! Abstraction policy: by default every typed word is replaced by its type
//! (*maximal abstraction*) — this is the single most general template of a
//! query and what domain knowledge should attach to. The exhaustive
//! alternative (every subset of typed positions, up to 2^L templates per
//! query) is available as [`TemplateMode::AllSubsets`] for the ablation
//! bench. Queries with no typed word have no template (an all-literal
//! "template" is just the query itself and generalizes nothing).

use crate::query::Query;
use l2q_corpus::{Corpus, TypeId};
use l2q_text::{Sym, SymbolTable};
use std::fmt;

/// One unit of a template: a literal word or a type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Unit {
    /// A literal word that must match exactly.
    Word(Sym),
    /// A type that must contain the query's word.
    Type(TypeId),
}

/// A template: a sequence of units.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Template(Box<[Unit]>);

impl Template {
    /// Build from units.
    pub fn new(units: &[Unit]) -> Self {
        Self(units.into())
    }

    /// The units.
    pub fn units(&self) -> &[Unit] {
        &self.0
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether there are no units.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether at least one unit is a type (only such templates
    /// generalize).
    pub fn has_type(&self) -> bool {
        self.0.iter().any(|u| matches!(u, Unit::Type(_)))
    }

    /// Whether this template abstracts `query` under the corpus's type
    /// system (paper Def. 1).
    pub fn abstracts(&self, query: &Query, corpus: &Corpus) -> bool {
        if self.len() != query.len() {
            return false;
        }
        self.0.iter().zip(query.words()).all(|(u, &w)| match u {
            Unit::Word(lit) => *lit == w,
            Unit::Type(t) => corpus.type_of_sym(w) == Some(*t),
        })
    }

    /// Render for display, e.g. `<topic> research`.
    pub fn render(&self, table: &SymbolTable, corpus: &Corpus) -> String {
        let mut out = String::new();
        for (i, u) in self.0.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            match u {
                Unit::Word(w) => out.push_str(table.resolve(*w)),
                Unit::Type(t) => {
                    out.push('<');
                    out.push_str(corpus.types.name(*t));
                    out.push('>');
                }
            }
        }
        out
    }
}

impl fmt::Debug for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Template({:?})", self.0)
    }
}

/// Template enumeration policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TemplateMode {
    /// Replace every typed word with its type (one template per query).
    #[default]
    Maximal,
    /// Enumerate every subset of typed positions (ablation; up to
    /// `2^ℓ − 1` templates per query, all-literal excluded).
    AllSubsets,
}

/// Templates of a query under the given mode. Empty if no word is typed.
pub fn templates_of(query: &Query, corpus: &Corpus, mode: TemplateMode) -> Vec<Template> {
    let types: Vec<Option<TypeId>> = query
        .words()
        .iter()
        .map(|&w| corpus.type_of_sym(w))
        .collect();
    let typed_positions: Vec<usize> = types
        .iter()
        .enumerate()
        .filter_map(|(i, t)| t.map(|_| i))
        .collect();
    if typed_positions.is_empty() {
        return Vec::new();
    }

    match mode {
        TemplateMode::Maximal => {
            let units: Vec<Unit> = query
                .words()
                .iter()
                .zip(&types)
                .map(|(&w, t)| match t {
                    Some(ty) => Unit::Type(*ty),
                    None => Unit::Word(w),
                })
                .collect();
            vec![Template::new(&units)]
        }
        TemplateMode::AllSubsets => {
            let k = typed_positions.len();
            let mut out = Vec::with_capacity((1 << k) - 1);
            // Non-empty subsets of typed positions.
            for mask in 1u32..(1 << k) {
                let units: Vec<Unit> = query
                    .words()
                    .iter()
                    .enumerate()
                    .map(
                        |(i, &w)| match typed_positions.iter().position(|&p| p == i) {
                            Some(bit) if mask & (1 << bit) != 0 => {
                                Unit::Type(types[i].expect("typed position"))
                            }
                            _ => Unit::Word(w),
                        },
                    )
                    .collect();
                out.push(Template::new(&units));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2q_corpus::{generate, researchers_domain, CorpusConfig};

    fn corpus() -> Corpus {
        generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap()
    }

    /// Intern a word list, looking each up in the corpus symbol table.
    fn query(c: &mut Corpus, words: &[&str]) -> Query {
        let syms: Vec<Sym> = words.iter().map(|w| c.symbols.intern(w)).collect();
        Query::new(&syms)
    }

    #[test]
    fn maximal_abstraction_replaces_typed_words() {
        let mut c = corpus();
        let q = query(&mut c, &["hpc", "research"]);
        let ts = templates_of(&q, &c, TemplateMode::Maximal);
        assert_eq!(ts.len(), 1);
        let t = &ts[0];
        assert!(t.has_type());
        assert!(t.abstracts(&q, &c));
        let topic = c.types.get("topic").unwrap();
        // One unit is <topic> ("hpc"), the other the literal "research";
        // order follows the query's canonical (Sym-sorted) order.
        assert!(t.units().contains(&Unit::Type(topic)));
        assert!(t.units().iter().any(|u| matches!(u, Unit::Word(_))));
    }

    #[test]
    fn untyped_queries_have_no_template() {
        let mut c = corpus();
        let q = query(&mut c, &["conducts", "valuable"]);
        assert!(templates_of(&q, &c, TemplateMode::Maximal).is_empty());
        assert!(templates_of(&q, &c, TemplateMode::AllSubsets).is_empty());
    }

    #[test]
    fn template_bridges_entity_variation() {
        let mut c = corpus();
        // Both "hpc research" and "data mining research" must abstract to
        // the same <topic> research template.
        let q1 = query(&mut c, &["hpc", "research"]);
        let q2 = query(&mut c, &["data mining", "research"]);
        let t1 = templates_of(&q1, &c, TemplateMode::Maximal);
        let t2 = templates_of(&q2, &c, TemplateMode::Maximal);
        assert_eq!(t1, t2, "entity-varied queries must share the template");
        assert!(t1[0].abstracts(&q2, &c));
    }

    #[test]
    fn all_subsets_enumerates_expected_count() {
        let mut c = corpus();
        // Two typed words → 3 non-empty subsets.
        let q = query(&mut c, &["hpc", "tkde"]);
        let ts = templates_of(&q, &c, TemplateMode::AllSubsets);
        assert_eq!(ts.len(), 3);
        for t in &ts {
            assert!(t.abstracts(&q, &c));
            assert!(t.has_type());
        }
    }

    #[test]
    fn abstracts_rejects_wrong_length_and_type() {
        let mut c = corpus();
        let q = query(&mut c, &["hpc", "research"]);
        let other = query(&mut c, &["stanford", "research"]);
        let t = &templates_of(&q, &c, TemplateMode::Maximal)[0];
        assert!(!t.abstracts(&query(&mut c, &["hpc"]), &c));
        // <topic> research does not abstract <institute> research.
        assert!(!t.abstracts(&other, &c));
    }

    #[test]
    fn render_shows_types_in_brackets() {
        let mut c = corpus();
        let q = query(&mut c, &["hpc", "research"]);
        let t = &templates_of(&q, &c, TemplateMode::Maximal)[0];
        let rendered = t.render(&c.symbols, &c);
        assert!(
            rendered == "<topic> research" || rendered == "research <topic>",
            "unexpected render: {rendered}"
        );
    }
}
