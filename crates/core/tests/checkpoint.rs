//! The durability contract: interrupt → export → import → continue must
//! produce exactly the run that was never interrupted — same fired
//! queries, same gathered pages, same per-iteration gains — across both
//! corpus domains, with the full fast path (incremental + warm + parallel)
//! enabled.
//!
//! Why this holds: the checkpoint persists only discrete decisions (fired
//! queries, page gains) plus the collective-recall recursion state as
//! exact f64 bit patterns; every derived cache rebuilds cold, and the
//! cold rebuild is bit-identical for a given page prefix (the
//! `determinism` suite's invariant). Under the cold-serial config every
//! selector score is a pure function of that discrete state, so there the
//! continuation's collective state is asserted bit-for-bit too.

use l2q_aspect::RelevanceOracle;
use l2q_core::{
    learn_domain, HarvestRecord, HarvestState, Harvester, L2qConfig, L2qSelector, QuerySelector,
    StepOutcome,
};
use l2q_corpus::spec::DomainSpec;
use l2q_corpus::{cars_domain, generate, researchers_domain, Corpus, CorpusConfig, EntityId};
use l2q_retrieval::SearchEngine;
use std::sync::Arc;

struct Fixture {
    corpus: Arc<Corpus>,
    engine: SearchEngine,
    oracle: RelevanceOracle,
    domain: l2q_core::DomainModel,
    cfg: L2qConfig,
}

impl Fixture {
    fn new(spec: &DomainSpec, cfg: L2qConfig) -> Self {
        let corpus = Arc::new(generate(spec, &CorpusConfig::tiny()).unwrap());
        let engine = SearchEngine::with_defaults(corpus.clone());
        let oracle = RelevanceOracle::from_truth(&corpus);
        let domain_entities: Vec<EntityId> = corpus.entity_ids().take(4).collect();
        let domain = learn_domain(&corpus, &domain_entities, &oracle, &cfg);
        Self {
            corpus,
            engine,
            oracle,
            domain,
            cfg,
        }
    }

    fn harvester(&self) -> Harvester<'_> {
        Harvester {
            corpus: &self.corpus,
            engine: &self.engine,
            oracle: &self.oracle,
            domain: Some(&self.domain),
            cfg: self.cfg,
        }
    }
}

/// Run to completion with no interruption.
fn uninterrupted(
    f: &Fixture,
    entity: EntityId,
    aspect: l2q_corpus::AspectId,
) -> (HarvestRecord, Option<l2q_core::CollectiveState>) {
    let h = f.harvester();
    let mut sel = L2qSelector::l2qbal();
    let rec = h.run(entity, aspect, &mut sel);
    (rec, sel.collective_state())
}

/// Step `interrupt_after` times, checkpoint through the portable JSON
/// form, rebuild state *and* selector from scratch, and continue.
fn interrupted(
    f: &Fixture,
    entity: EntityId,
    aspect: l2q_corpus::AspectId,
    interrupt_after: usize,
) -> (HarvestRecord, Option<l2q_core::CollectiveState>) {
    let h = f.harvester();
    let mut sel = L2qSelector::l2qbal();
    sel.reset();
    let mut state = HarvestState::begin(&h, entity, aspect);
    for _ in 0..interrupt_after {
        if matches!(state.step(&h, &mut sel), StepOutcome::Finished(_)) {
            break;
        }
    }

    // The "crash": everything live is dropped; only the JSON survives.
    let json = state.export_json(&f.corpus, sel.collective_state());
    drop(state);

    let (mut state, collective) = HarvestState::import_json(&json, &f.corpus).unwrap();
    let mut sel = L2qSelector::l2qbal();
    sel.reset();
    if let Some(c) = collective {
        sel.restore_collective(c);
    }
    while !state.is_finished() {
        state.step(&h, &mut sel);
    }
    (state.finish(), sel.collective_state())
}

fn assert_same_record(a: &HarvestRecord, b: &HarvestRecord, label: &str) {
    let aq: Vec<_> = a.queries().collect();
    let bq: Vec<_> = b.queries().collect();
    assert_eq!(aq, bq, "{label}: fired queries diverged");
    assert_eq!(a.gathered, b.gathered, "{label}: gathered pages diverged");
    assert_eq!(a.seed_results, b.seed_results, "{label}: seed diverged");
    assert_eq!(
        a.iterations.len(),
        b.iterations.len(),
        "{label}: step count"
    );
    for (ai, bi) in a.iterations.iter().zip(&b.iterations) {
        assert_eq!(ai.new_pages, bi.new_pages, "{label}: per-step gains");
        assert_eq!(ai.gathered_after, bi.gathered_after, "{label}");
    }
}

fn assert_interrupt_is_invisible(spec: &DomainSpec, domain_name: &str, cfg: L2qConfig) {
    let f = Fixture::new(spec, cfg);
    // A non-domain entity, like the paper's train/test split.
    let entity = EntityId(6);
    for aspect in f.corpus.aspects() {
        let (base, _) = uninterrupted(&f, entity, aspect);
        for cut in [1, 2, 3] {
            let (resumed, _) = interrupted(&f, entity, aspect, cut);
            assert_same_record(
                &base,
                &resumed,
                &format!("{domain_name}/{aspect:?} cut@{cut}"),
            );
        }
    }
}

#[test]
fn researchers_interrupt_restore_continue_is_bit_identical() {
    assert_interrupt_is_invisible(&researchers_domain(), "researchers", L2qConfig::default());
}

#[test]
fn cars_interrupt_restore_continue_is_bit_identical() {
    assert_interrupt_is_invisible(&cars_domain(), "cars", L2qConfig::default());
}

/// Under the cold-serial config every score is a pure function of the
/// discrete state, so even the collective-recall recursion lands on
/// exactly the same f64 bits after interrupt + restore + continue.
#[test]
fn cold_serial_collective_state_matches_bit_for_bit() {
    let f = Fixture::new(&researchers_domain(), L2qConfig::default().cold_serial());
    let entity = EntityId(6);
    let aspect = f.corpus.aspects().next().unwrap();
    let (base, base_coll) = uninterrupted(&f, entity, aspect);
    let (resumed, resumed_coll) = interrupted(&f, entity, aspect, 2);
    assert_same_record(&base, &resumed, "cold-serial");
    let (a, b) = (base_coll.unwrap(), resumed_coll.unwrap());
    assert_eq!(a.recall_phi().to_bits(), b.recall_phi().to_bits());
    assert_eq!(a.recall_star_phi().to_bits(), b.recall_star_phi().to_bits());
}
