//! Regression gate for the incremental/warm/parallel/pruned selection
//! path: with every speed knob on (the default), a harvest must make
//! exactly the same
//! decisions as the original from-scratch, cold-start, serial path — same
//! fired-query sequence, same gathered pages, same per-iteration gains —
//! across both corpus domains and all three full L2Q strategies.
//!
//! Selections are argmaxes over solved utilities: the incremental build is
//! bit-identical by construction (the graph is assembled in the cold
//! build's edge order), parallel walks don't touch any walk's own
//! iteration, and warm starts converge to the same fixpoint within the
//! solver tolerance — so the argmax (with its lexicographic tie-break)
//! lands on the same query. Bound-and-prune only stops a solve early when
//! certified score intervals prove the winner, falling back to the exact
//! solve otherwise. This test is the end-to-end proof.

use l2q_aspect::RelevanceOracle;
use l2q_core::{learn_domain, HarvestRecord, Harvester, L2qConfig, L2qSelector, QuerySelector};
use l2q_corpus::spec::DomainSpec;
use l2q_corpus::{cars_domain, generate, researchers_domain, CorpusConfig, EntityId};
use l2q_retrieval::SearchEngine;
use std::sync::Arc;

fn harvest_all(spec: &DomainSpec, cfg: L2qConfig) -> Vec<(String, HarvestRecord)> {
    let corpus = Arc::new(generate(spec, &CorpusConfig::tiny()).unwrap());
    let engine = SearchEngine::with_defaults(corpus.clone());
    let oracle = RelevanceOracle::from_truth(&corpus);
    let domain_entities: Vec<EntityId> = corpus.entity_ids().take(4).collect();
    let domain = learn_domain(&corpus, &domain_entities, &oracle, &cfg);
    let harvester = Harvester {
        corpus: &corpus,
        engine: &engine,
        oracle: &oracle,
        domain: Some(&domain),
        cfg,
    };

    let mut out = Vec::new();
    for aspect in corpus.aspects() {
        for mut sel in [
            L2qSelector::l2qp(),
            L2qSelector::l2qr(),
            L2qSelector::l2qbal(),
        ] {
            // A non-domain entity, like the paper's train/test split.
            let rec = harvester.run(EntityId(6), aspect, &mut sel);
            out.push((format!("{}/{:?}", sel.name(), aspect), rec));
        }
    }
    out
}

fn assert_identical_runs(spec: &DomainSpec, domain_name: &str) {
    let fast = harvest_all(spec, L2qConfig::default());
    let cold = harvest_all(spec, L2qConfig::default().cold_serial());
    assert_eq!(fast.len(), cold.len());
    for ((label, f), (_, c)) in fast.iter().zip(&cold) {
        let fq: Vec<_> = f.queries().collect();
        let cq: Vec<_> = c.queries().collect();
        assert_eq!(fq, cq, "{domain_name}/{label}: fired queries diverged");
        assert_eq!(
            f.gathered, c.gathered,
            "{domain_name}/{label}: gathered pages diverged"
        );
        assert_eq!(f.seed_results, c.seed_results);
        assert_eq!(f.iterations.len(), c.iterations.len());
        for (fi, ci) in f.iterations.iter().zip(&c.iterations) {
            assert_eq!(
                fi.new_pages, ci.new_pages,
                "{domain_name}/{label}: per-step page gains diverged"
            );
            assert_eq!(fi.gathered_after, ci.gathered_after);
        }
    }
}

#[test]
fn researchers_selections_match_the_cold_serial_path() {
    assert_identical_runs(&researchers_domain(), "researchers");
}

#[test]
fn cars_selections_match_the_cold_serial_path() {
    assert_identical_runs(&cars_domain(), "cars");
}

/// The knobs are independent: each one alone must also preserve the
/// outcome (catches a knob silently depending on another).
#[test]
fn each_speed_knob_is_individually_lossless() {
    let spec = researchers_domain();
    let base = harvest_all(&spec, L2qConfig::default().cold_serial());
    for cfg in [
        L2qConfig::default()
            .cold_serial()
            .with_incremental_phase(true),
        L2qConfig::default()
            .cold_serial()
            .with_incremental_phase(true)
            .with_warm_start(true),
        L2qConfig::default().cold_serial().with_parallel_walks(true),
        // Bound-and-prune alone: truncated-but-certified walk solves on
        // top of cold from-scratch builds.
        L2qConfig::default().cold_serial().with_prune(true),
        // Pruning over incremental warm-started builds — the production
        // combination minus thread scheduling.
        L2qConfig::default()
            .cold_serial()
            .with_incremental_phase(true)
            .with_warm_start(true)
            .with_prune(true),
    ] {
        let runs = harvest_all(&spec, cfg);
        for ((label, a), (_, b)) in runs.iter().zip(&base) {
            let qa: Vec<_> = a.queries().collect();
            let qb: Vec<_> = b.queries().collect();
            assert_eq!(qa, qb, "{label}: fired queries diverged");
            assert_eq!(a.gathered, b.gathered, "{label}: gathered diverged");
        }
    }
}
