//! End-to-end proof that bound-and-prune actually prunes: on a default
//! configuration harvest, at least one selection step must certify its
//! winner with strictly fewer exact solves than candidates. (Bitwise
//! equality of the pruned and unpruned trajectories is proven separately
//! in `determinism.rs`; this test guards against the opposite failure
//! mode — bounds so loose that every step silently falls back and the
//! "optimization" never fires.)
//!
//! The counters live in the process-global metrics registry, so this
//! test reads deltas around its own harvests rather than absolute
//! values; other tests in the same binary would otherwise interfere.

use l2q_aspect::RelevanceOracle;
use l2q_core::{learn_domain, Harvester, L2qConfig, L2qSelector};
use l2q_corpus::{generate, researchers_domain, CorpusConfig, EntityId};
use l2q_retrieval::SearchEngine;
use std::sync::Arc;

#[test]
fn some_selection_steps_certify_without_solving_every_candidate() {
    let cfg = L2qConfig::default();
    let corpus = Arc::new(generate(&researchers_domain(), &CorpusConfig::tiny()).unwrap());
    let engine = SearchEngine::with_defaults(corpus.clone());
    let oracle = RelevanceOracle::from_truth(&corpus);
    let domain_entities: Vec<EntityId> = corpus.entity_ids().take(4).collect();
    let domain = learn_domain(&corpus, &domain_entities, &oracle, &cfg);
    let harvester = Harvester {
        corpus: &corpus,
        engine: &engine,
        oracle: &oracle,
        domain: Some(&domain),
        cfg,
    };

    let reg = l2q_obs::global();
    let pruned = reg.counter("selection_candidates_pruned_total");
    let exact = reg.counter("selection_exact_solves_total");
    let fallbacks = reg.counter("selection_bound_fallbacks_total");
    let (pruned0, exact0, fallbacks0) = (pruned.get(), exact.get(), fallbacks.get());

    for aspect in corpus.aspects() {
        for mut sel in [
            L2qSelector::l2qp(),
            L2qSelector::l2qr(),
            L2qSelector::l2qbal(),
        ] {
            let _ = harvester.run(EntityId(6), aspect, &mut sel);
        }
    }

    let d_pruned = pruned.get() - pruned0;
    let d_exact = exact.get() - exact0;
    let d_fallbacks = fallbacks.get() - fallbacks0;
    // Every context-aware step records each candidate as either pruned
    // or exact, so the totals reconstruct the candidate volume.
    let total = d_pruned + d_exact;
    assert!(total > 0, "the harvests above ran context-aware selections");
    assert!(
        d_pruned > 0,
        "no selection step certified early: {d_exact} exact solves, \
         {d_fallbacks} fallbacks — the bounds never separated a winner"
    );
    assert!(
        d_exact < total,
        "pruning must leave some candidates unsolved ({d_exact}/{total})"
    );
}
