//! Headline-shape regression test.
//!
//! Asserts the orderings the reproduction stands on, at a reduced scale:
//! L2QBAL must beat RND and the template-free ablation on normalized F,
//! and L2QP must beat every domain-blind baseline on normalized
//! precision. Ignored by default (it runs a full evaluation); execute
//! with:
//!
//! ```text
//! cargo test --release --test headline_shape -- --ignored
//! ```

use l2q::aspect::{train_aspect_models, RelevanceOracle, TrainConfig};
use l2q::baselines::{LmSelector, RndSelector};
use l2q::core::{learn_domain, L2qConfig, L2qSelector, QuerySelector};
use l2q::corpus::{generate, researchers_domain, CorpusConfig};
use l2q::eval::{evaluate_selector, ideal_bounds_parallel, make_splits, EvalContext};
use l2q::retrieval::SearchEngine;

#[test]
#[ignore = "full evaluation; run in release with -- --ignored"]
fn l2q_beats_uninformed_and_template_free_baselines() {
    let corpus = generate(&researchers_domain(), &CorpusConfig::with_entities(60)).unwrap();
    let corpus = std::sync::Arc::new(corpus);
    let models = train_aspect_models(&corpus, &TrainConfig::default());
    let oracle = RelevanceOracle::from_models(&corpus, &models);
    let engine = SearchEngine::with_defaults(corpus.clone());
    let cfg = L2qConfig::default();

    let split = make_splits(corpus.entities.len(), 1, 3).pop().unwrap();
    let domain = learn_domain(&corpus, &split.domain, &oracle, &cfg);
    let test = &split.test[..8.min(split.test.len())];

    let ctx = EvalContext {
        corpus: &corpus,
        engine: &engine,
        oracle: &oracle,
    };
    let bounds = ideal_bounds_parallel(&ctx, Some(&domain), test, &cfg, 8);

    let run = |sel: &mut dyn QuerySelector, with_domain: bool| {
        let eval = evaluate_selector(
            &ctx,
            if with_domain { Some(&domain) } else { None },
            test,
            None,
            sel,
            &cfg,
            &bounds,
        );
        let it = eval.at(cfg.n_queries).expect("default budget");
        (it.normalized.precision, it.normalized.f1)
    };

    let (_, f_bal) = run(&mut L2qSelector::l2qbal(), true);
    let (p_l2qp, _) = run(&mut L2qSelector::l2qp(), true);
    let (p_rnd, f_rnd) = run(&mut RndSelector::new(5), false);
    let (p_lm, _) = run(&mut LmSelector::new(), false);
    let (_, f_p_only) = run(&mut L2qSelector::precision_only(), false);

    assert!(
        f_bal > f_rnd,
        "L2QBAL F ({f_bal:.3}) must beat RND ({f_rnd:.3})"
    );
    assert!(
        f_bal > f_p_only,
        "L2QBAL F ({f_bal:.3}) must beat the template-free ablation ({f_p_only:.3})"
    );
    assert!(
        p_l2qp > p_rnd && p_l2qp > p_lm,
        "L2QP precision ({p_l2qp:.3}) must beat RND ({p_rnd:.3}) and LM ({p_lm:.3})"
    );
}
