//! Cross-crate property-based tests (proptest) on the system's key
//! invariants.

use l2q::core::Query;
use l2q::graph::{solve, GraphBuilder, Regularization, UtilityKind, WalkConfig};
use l2q::text::{ngrams, Bow, Sym};
use proptest::prelude::*;

/// Generate a random bipartite page–query graph plus a relevance vector.
fn arb_graph() -> impl Strategy<Value = (Vec<(u32, u32)>, usize, usize, Vec<bool>)> {
    (2usize..12, 2usize..20).prop_flat_map(|(n_pages, n_queries)| {
        let edges = proptest::collection::vec(
            (0..n_pages as u32, 0..n_queries as u32),
            1..(n_pages * n_queries).min(60),
        );
        let relevant = proptest::collection::vec(any::<bool>(), n_pages);
        (edges, Just(n_pages), Just(n_queries), relevant)
    })
}

proptest! {
    /// Probabilistic precision lives in [0, 1] for any graph and any
    /// 0/1 page regularization.
    #[test]
    fn precision_is_bounded((edges, n_pages, n_queries, relevant) in arb_graph()) {
        let mut b = GraphBuilder::new(n_pages, n_queries, 0);
        for (p, q) in &edges {
            b.page_query(*p, *q, 1.0);
        }
        let g = b.build();
        let reg = Regularization::precision_from_relevance(&g, &relevant);
        let u = solve(&g, UtilityKind::Precision, &reg, &WalkConfig::default());
        for v in u.pages.iter().chain(&u.queries) {
            prop_assert!((0.0..=1.0 + 1e-9).contains(v), "precision {v} out of [0,1]");
        }
    }

    /// The recall walk never creates mass: total query recall is bounded
    /// by the unit mass injected by regularization.
    #[test]
    fn recall_mass_is_conserved((edges, n_pages, n_queries, relevant) in arb_graph()) {
        let mut b = GraphBuilder::new(n_pages, n_queries, 0);
        for (p, q) in &edges {
            b.page_query(*p, *q, 1.0);
        }
        let g = b.build();
        let reg = Regularization::recall_from_relevance(&g, &relevant);
        let u = solve(&g, UtilityKind::Recall, &reg, &WalkConfig::default());
        let total: f64 = u.queries.iter().sum();
        prop_assert!(total <= 1.0 + 1e-6, "query recall mass {total} > 1");
        for v in u.pages.iter().chain(&u.queries) {
            prop_assert!(*v >= 0.0);
        }
    }

    /// An all-relevant regularization dominates any sub-relevance:
    /// adding relevant pages never lowers any query's precision... not a
    /// theorem in general, but scaling the regularization up scales the
    /// fixpoint up (linearity in Û).
    #[test]
    fn fixpoint_is_linear_in_regularization((edges, n_pages, n_queries, relevant) in arb_graph()) {
        let mut b = GraphBuilder::new(n_pages, n_queries, 0);
        for (p, q) in &edges {
            b.page_query(*p, *q, 1.0);
        }
        let g = b.build();
        let reg1 = Regularization::precision_from_relevance(&g, &relevant);
        let mut reg2 = reg1.clone();
        for v in &mut reg2.pages {
            *v *= 2.0;
        }
        let cfg = WalkConfig { max_iters: 300, ..Default::default() };
        let u1 = solve(&g, UtilityKind::Precision, &reg1, &cfg);
        let u2 = solve(&g, UtilityKind::Precision, &reg2, &cfg);
        for (a, b) in u1.queries.iter().zip(&u2.queries) {
            prop_assert!((2.0 * a - b).abs() < 1e-6, "not linear: {a} vs {b}");
        }
    }

    /// Bow::contains_all agrees with element-wise tf comparison.
    #[test]
    fn bow_containment_semantics(big in proptest::collection::vec(0u32..12, 0..30),
                                 small in proptest::collection::vec(0u32..12, 0..8)) {
        let big_bow: Bow = big.iter().map(|&i| Sym(i)).collect();
        let small_bow: Bow = small.iter().map(|&i| Sym(i)).collect();
        let expected = (0u32..12).all(|w| big_bow.tf(Sym(w)) >= small_bow.tf(Sym(w)));
        prop_assert_eq!(big_bow.contains_all(&small_bow), expected);
    }

    /// Every n-gram of a word sequence is contained in the sequence's bag.
    #[test]
    fn ngrams_are_contained_in_page_bag(words in proptest::collection::vec(0u32..50, 0..40),
                                        max_len in 1usize..5) {
        let syms: Vec<Sym> = words.iter().map(|&i| Sym(i)).collect();
        let bag = Bow::from_words(&syms);
        for gram in ngrams(&syms, max_len) {
            let gram_bag = Bow::from_words(gram);
            prop_assert!(bag.contains_all(&gram_bag));
        }
    }

    /// Query canonicalization: construction order never matters.
    #[test]
    fn query_is_order_insensitive(mut words in proptest::collection::vec(0u32..100, 1..6)) {
        let syms: Vec<Sym> = words.iter().map(|&i| Sym(i)).collect();
        let q1 = Query::new(&syms);
        words.reverse();
        let syms_rev: Vec<Sym> = words.iter().map(|&i| Sym(i)).collect();
        let q2 = Query::new(&syms_rev);
        prop_assert_eq!(q1, q2);
    }
}
