//! End-to-end integration tests: corpus → classifiers → engine → domain
//! phase → harvest → evaluation, across crates.

use l2q::aspect::{train_aspect_models, RelevanceOracle, TrainConfig};
use l2q::baselines::{AqSelector, HrSelector, LmSelector, MqSelector, RndSelector};
use l2q::core::{learn_domain, Harvester, L2qConfig, L2qSelector, QuerySelector};
use l2q::corpus::{cars_domain, generate, researchers_domain, Corpus, CorpusConfig, EntityId};
use l2q::eval::{evaluate_selector, ideal_bounds, page_metrics, EvalContext, IdealSelector};
use l2q::retrieval::SearchEngine;

struct Pipeline {
    corpus: std::sync::Arc<Corpus>,
    oracle: RelevanceOracle,
}

fn researcher_pipeline() -> Pipeline {
    let corpus = generate(
        &researchers_domain(),
        &CorpusConfig {
            n_entities: 16,
            pages_per_entity: 16,
            seed: 99,
            ..CorpusConfig::tiny()
        },
    )
    .unwrap();
    let corpus = std::sync::Arc::new(corpus);
    let models = train_aspect_models(&corpus, &TrainConfig::default());
    let oracle = RelevanceOracle::from_models(&corpus, &models);
    Pipeline { corpus, oracle }
}

#[test]
fn full_pipeline_with_trained_classifiers() {
    let p = researcher_pipeline();
    let engine = SearchEngine::with_defaults(p.corpus.clone());
    let cfg = L2qConfig::default();
    let domain_entities: Vec<EntityId> = p.corpus.entity_ids().take(8).collect();
    let domain = learn_domain(&p.corpus, &domain_entities, &p.oracle, &cfg);
    assert!(domain.query_count() > 0);
    assert!(domain.template_count() > 0);

    let harvester = Harvester {
        corpus: &p.corpus,
        engine: &engine,
        oracle: &p.oracle,
        domain: Some(&domain),
        cfg,
    };
    let target = EntityId(12);
    for aspect in p.corpus.aspects() {
        let mut sel = L2qSelector::l2qbal();
        let rec = harvester.run(target, aspect, &mut sel);
        assert!(!rec.gathered.is_empty(), "no pages gathered");
        // Every gathered page belongs to the target entity (hard seed
        // focusing) and appears exactly once.
        let mut seen = std::collections::HashSet::new();
        for &pg in &rec.gathered {
            assert!(seen.insert(pg));
            assert_eq!(p.corpus.page(pg).entity, target);
        }
    }
}

#[test]
fn every_selector_runs_on_every_aspect() {
    let p = researcher_pipeline();
    let engine = SearchEngine::with_defaults(p.corpus.clone());
    let cfg = L2qConfig::default();
    let domain_entities: Vec<EntityId> = p.corpus.entity_ids().take(8).collect();
    let domain = learn_domain(&p.corpus, &domain_entities, &p.oracle, &cfg);
    let harvester = Harvester {
        corpus: &p.corpus,
        engine: &engine,
        oracle: &p.oracle,
        domain: Some(&domain),
        cfg,
    };

    let selectors: Vec<Box<dyn QuerySelector>> = vec![
        Box::new(L2qSelector::l2qp()),
        Box::new(L2qSelector::l2qr()),
        Box::new(L2qSelector::l2qbal()),
        Box::new(L2qSelector::precision_only()),
        Box::new(L2qSelector::recall_only()),
        Box::new(L2qSelector::precision_templates()),
        Box::new(L2qSelector::recall_templates()),
        Box::new(RndSelector::new(3)),
        Box::new(LmSelector::new()),
        Box::new(AqSelector::new()),
        Box::new(HrSelector::new()),
        Box::new(MqSelector::new()),
        Box::new(IdealSelector::new()),
    ];
    let aspect = p.corpus.aspect_by_name("RESEARCH").unwrap();
    for mut sel in selectors {
        let rec = harvester.run(EntityId(10), aspect, sel.as_mut());
        assert!(
            !rec.seed_results.is_empty(),
            "{}: seed retrieved nothing",
            sel.name()
        );
        // Queries never repeat within a run (includes the seed).
        let mut fired: Vec<_> = rec.queries().collect();
        fired.sort();
        let before = fired.len();
        fired.dedup();
        assert_eq!(before, fired.len(), "{} repeated a query", sel.name());
    }
}

#[test]
fn evaluation_normalizes_methods_between_zero_and_ideal() {
    let p = researcher_pipeline();
    let engine = SearchEngine::with_defaults(p.corpus.clone());
    let ctx = EvalContext {
        corpus: &p.corpus,
        engine: &engine,
        oracle: &p.oracle,
    };
    let cfg = L2qConfig::default();
    let entities: Vec<EntityId> = p.corpus.entity_ids().skip(8).take(4).collect();
    let bounds = ideal_bounds(&ctx, None, &entities, &cfg);
    assert!(!bounds.is_empty());

    let mut sel = L2qSelector::precision_only();
    let eval = evaluate_selector(&ctx, None, &entities, None, &mut sel, &cfg, &bounds);
    for it in &eval.per_iter {
        assert!(it.pairs > 0);
        assert!(it.raw.precision >= 0.0 && it.raw.precision <= 1.0);
        assert!(it.raw.recall >= 0.0 && it.raw.recall <= 1.0);
        assert!(it.normalized.precision.is_finite());
    }
}

#[test]
fn cars_domain_end_to_end() {
    let corpus = generate(
        &cars_domain(),
        &CorpusConfig {
            n_entities: 12,
            ..CorpusConfig::tiny()
        },
    )
    .unwrap();
    let corpus = std::sync::Arc::new(corpus);
    let models = train_aspect_models(&corpus, &TrainConfig::default());
    let oracle = RelevanceOracle::from_models(&corpus, &models);
    let engine = SearchEngine::with_defaults(corpus.clone());
    let cfg = L2qConfig::default();
    let domain_entities: Vec<EntityId> = corpus.entity_ids().take(6).collect();
    let domain = learn_domain(&corpus, &domain_entities, &oracle, &cfg);
    let harvester = Harvester {
        corpus: &corpus,
        engine: &engine,
        oracle: &oracle,
        domain: Some(&domain),
        cfg,
    };
    let aspect = corpus.aspect_by_name("SAFETY").unwrap();
    let mut sel = L2qSelector::l2qr();
    let rec = harvester.run(EntityId(9), aspect, &mut sel);
    let m = page_metrics(&corpus, &oracle, EntityId(9), aspect, &rec.gathered);
    assert!(m.is_some(), "SAFETY must have relevant pages");
}

#[test]
fn paragraph_granularity_pipeline_works_end_to_end() {
    // The paper's finer granularity: retrieval units = paragraphs. The
    // exploded corpus drives the identical pipeline.
    use l2q::corpus::explode_to_paragraphs;
    let p = researcher_pipeline();
    let (units, origin) = explode_to_paragraphs(&p.corpus);
    let units = std::sync::Arc::new(units);
    let models = train_aspect_models(&units, &TrainConfig::default());
    let oracle = RelevanceOracle::from_models(&units, &models);
    let engine = SearchEngine::with_defaults(units.clone());
    let cfg = L2qConfig::default();
    let domain_entities: Vec<EntityId> = units.entity_ids().take(8).collect();
    let domain = learn_domain(&units, &domain_entities, &oracle, &cfg);
    let harvester = Harvester {
        corpus: &units,
        engine: &engine,
        oracle: &oracle,
        domain: Some(&domain),
        cfg,
    };
    let aspect = units.aspect_by_name("RESEARCH").unwrap();
    let target = EntityId(12);
    let mut sel = L2qSelector::l2qbal();
    let rec = harvester.run(target, aspect, &mut sel);
    assert!(!rec.gathered.is_empty());
    // Gathered units map back to real (page, paragraph) positions of the
    // original corpus.
    for &u in &rec.gathered {
        let (src, pi) = origin.of(u);
        let page = p.corpus.page(src);
        assert_eq!(page.entity, target);
        assert!((pi as usize) < page.paragraphs.len());
    }
    let m = page_metrics(&units, &oracle, target, aspect, &rec.gathered);
    assert!(m.is_some());
}

#[test]
fn seed_only_baseline_is_weaker_than_l2q_on_average() {
    // Harvesting with L2QBAL must beat not harvesting at all (seed only)
    // in F1, averaged over entities — the most basic sanity of the whole
    // system.
    let p = researcher_pipeline();
    let engine = SearchEngine::with_defaults(p.corpus.clone());
    let cfg = L2qConfig::default();
    let domain_entities: Vec<EntityId> = p.corpus.entity_ids().take(8).collect();
    let domain = learn_domain(&p.corpus, &domain_entities, &p.oracle, &cfg);
    let harvester = Harvester {
        corpus: &p.corpus,
        engine: &engine,
        oracle: &p.oracle,
        domain: Some(&domain),
        cfg,
    };
    let aspect = p.corpus.aspect_by_name("RESEARCH").unwrap();

    let mut f_seed = 0.0;
    let mut f_l2q = 0.0;
    for e in p.corpus.entity_ids().skip(8) {
        let mut sel = L2qSelector::l2qbal();
        let rec = harvester.run(e, aspect, &mut sel);
        let m_all = page_metrics(&p.corpus, &p.oracle, e, aspect, &rec.gathered).unwrap();
        let m_seed = page_metrics(&p.corpus, &p.oracle, e, aspect, &rec.seed_results).unwrap();
        f_l2q += m_all.f1;
        f_seed += m_seed.f1;
    }
    assert!(
        f_l2q > f_seed,
        "harvesting must beat seed-only: {f_l2q:.3} vs {f_seed:.3}"
    );
}
