//! Persisting a learned domain model.
//!
//! ```text
//! cargo run --release --example domain_model_io
//! ```
//!
//! The domain phase runs once per domain; in production its output — the
//! template utilities — is an artifact worth saving and shipping. This
//! example learns a model, exports it to JSON, reloads it, and verifies
//! the reloaded model drives the same harvest.

use l2q::aspect::RelevanceOracle;
use l2q::core::{learn_domain, DomainModel, Harvester, L2qConfig, L2qSelector};
use l2q::corpus::{generate, researchers_domain, CorpusConfig, EntityId};
use l2q::retrieval::SearchEngine;

fn main() {
    let corpus = generate(&researchers_domain(), &CorpusConfig::with_entities(40))
        .expect("corpus generation");
    let corpus = std::sync::Arc::new(corpus);
    let oracle = RelevanceOracle::from_truth(&corpus);
    let engine = SearchEngine::with_defaults(corpus.clone());
    let cfg = L2qConfig::default();

    let peers: Vec<EntityId> = corpus.entity_ids().take(20).collect();
    let learned = learn_domain(&corpus, &peers, &oracle, &cfg);
    println!(
        "learned: {} queries, {} templates",
        learned.query_count(),
        learned.template_count()
    );

    // Export → (disk / network / artifact registry) → import.
    let json = learned.to_json(&corpus);
    println!("portable JSON: {} KiB", json.len() / 1024);
    let (restored, stats) = DomainModel::from_json(&json, &corpus).expect("import");
    println!(
        "restored: {} queries ({} dropped), {} templates ({} dropped)",
        stats.queries_resolved,
        stats.queries_dropped,
        stats.templates_resolved,
        stats.templates_dropped
    );

    // Both models must drive identical harvests.
    let target = EntityId(33);
    let aspect = corpus.aspect_by_name("AWARD").expect("aspect");
    let run = |dm: &DomainModel| {
        let harvester = Harvester {
            corpus: &corpus,
            engine: &engine,
            oracle: &oracle,
            domain: Some(dm),
            cfg,
        };
        let mut sel = L2qSelector::l2qbal();
        harvester
            .run(target, aspect, &mut sel)
            .queries()
            .map(|q| q.render(&corpus.symbols))
            .collect::<Vec<_>>()
    };
    let a = run(&learned);
    let b = run(&restored);
    println!("\nharvest with learned model:  {a:?}");
    println!("harvest with restored model: {b:?}");
    assert_eq!(a, b, "restored model must behave identically");
    println!("\nround-trip verified: identical query selections");
}
