//! Vertical-portal scenario (paper Sect. I): build a car portal by
//! harvesting *every* aspect of a set of car models — the Edmunds.com
//! motivating example — and print a per-aspect coverage report.
//!
//! ```text
//! cargo run --release --example vertical_portal
//! ```
//!
//! For each target car and each of the seven aspects (VERDICT, INTERIOR,
//! EXTERIOR, PRICE, RELIABILITY, SAFETY, DRIVING), L2QBAL harvests a
//! focused page set; the portal's "completeness" is the average recall
//! and the "cleanliness" its average precision.

use l2q::aspect::{train_aspect_models, RelevanceOracle, TrainConfig};
use l2q::core::{learn_domain, Harvester, L2qConfig, L2qSelector};
use l2q::corpus::{cars_domain, generate, CorpusConfig, EntityId};
use l2q::eval::{page_metrics, MetricsAccumulator};
use l2q::retrieval::SearchEngine;

fn main() {
    let corpus =
        generate(&cars_domain(), &CorpusConfig::with_entities(60)).expect("corpus generation");
    let corpus = std::sync::Arc::new(corpus);
    let models = train_aspect_models(&corpus, &TrainConfig::default());
    let oracle = RelevanceOracle::from_models(&corpus, &models);
    let engine = SearchEngine::with_defaults(corpus.clone());
    let cfg = L2qConfig::default();

    // Peers power the domain phase; the portal covers five target models.
    let domain_entities: Vec<EntityId> = corpus.entity_ids().take(40).collect();
    let domain = learn_domain(&corpus, &domain_entities, &oracle, &cfg);
    let targets: Vec<EntityId> = corpus.entity_ids().skip(40).take(5).collect();

    let harvester = Harvester {
        corpus: &corpus,
        engine: &engine,
        oracle: &oracle,
        domain: Some(&domain),
        cfg,
    };

    println!("building a car portal for {} models\n", targets.len());
    let mut per_aspect: Vec<MetricsAccumulator> =
        vec![MetricsAccumulator::new(); corpus.aspect_count()];

    for &car in &targets {
        println!("== {} ==", corpus.entity(car).name);
        for aspect in corpus.aspects() {
            let mut selector = L2qSelector::l2qbal();
            let record = harvester.run(car, aspect, &mut selector);
            let queries: Vec<String> = record
                .queries()
                .map(|q| format!("\"{}\"", q.render(&corpus.symbols)))
                .collect();
            if let Some(m) = page_metrics(&corpus, &oracle, car, aspect, &record.gathered) {
                per_aspect[aspect.index()].push(m);
                println!(
                    "  {:12} {:2} pages  P={:.2} R={:.2}  via {}",
                    corpus.aspect_name(aspect),
                    record.gathered.len(),
                    m.precision,
                    m.recall,
                    queries.join(", ")
                );
            }
        }
    }

    println!("\nportal summary (mean over models):");
    for aspect in corpus.aspects() {
        let m = per_aspect[aspect.index()].mean();
        println!(
            "  {:12} precision {:.2}  recall {:.2}  F1 {:.2}",
            corpus.aspect_name(aspect),
            m.precision,
            m.recall,
            m.f1
        );
    }
}
