//! Baseline shoot-out: run every selector in the repository on the same
//! harvesting task, evaluated exactly like the paper (normalized against
//! the infeasible ideal upper bound), and print a leaderboard.
//!
//! ```text
//! cargo run --release --example baseline_shootout
//! ```
//!
//! Compares the full L2Q family (L2QP, L2QR, L2QBAL), the paper's
//! ablations (P, R, P+q, R+q, P+t, R+t), the published baselines
//! (LM, AQ, HR, MQ) and a random reference (RND), averaged over test
//! researchers and all seven aspects.

use l2q::aspect::{train_aspect_models, RelevanceOracle, TrainConfig};
use l2q::baselines::{
    AqSelector, DomainQuerySelector, HrSelector, LmSelector, MqSelector, RndSelector,
};
use l2q::core::{learn_domain, L2qConfig, L2qSelector, QuerySelector};
use l2q::corpus::{generate, researchers_domain, CorpusConfig};
use l2q::eval::{
    evaluate_selector, ideal_bounds_parallel, make_splits, EvalContext, IdealSelector,
};
use l2q::retrieval::SearchEngine;

fn main() {
    let corpus = generate(&researchers_domain(), &CorpusConfig::with_entities(80))
        .expect("corpus generation");
    let corpus = std::sync::Arc::new(corpus);
    let models = train_aspect_models(&corpus, &TrainConfig::default());
    let oracle = RelevanceOracle::from_models(&corpus, &models);
    let engine = SearchEngine::with_defaults(corpus.clone());
    let cfg = L2qConfig::default();

    // The paper's protocol: half the entities are peers (domain phase),
    // a quarter test; normalize against the ideal solution.
    let split = make_splits(corpus.entities.len(), 1, 7)
        .pop()
        .expect("split");
    let domain = learn_domain(&corpus, &split.domain, &oracle, &cfg);
    let test = &split.test[..10.min(split.test.len())];

    let ctx = EvalContext {
        corpus: &corpus,
        engine: &engine,
        oracle: &oracle,
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let bounds = ideal_bounds_parallel(&ctx, Some(&domain), test, &cfg, threads);

    // (selector, sees domain model?) — RND/P/R/LM/AQ/MQ are domain-blind.
    let contenders: Vec<(Box<dyn QuerySelector>, bool)> = vec![
        (Box::new(IdealSelector::new()), true),
        (Box::new(L2qSelector::l2qbal()), true),
        (Box::new(L2qSelector::l2qp()), true),
        (Box::new(L2qSelector::l2qr()), true),
        (Box::new(L2qSelector::precision_templates()), true),
        (Box::new(L2qSelector::recall_templates()), true),
        (Box::new(L2qSelector::precision_only()), false),
        (Box::new(L2qSelector::recall_only()), false),
        (Box::new(DomainQuerySelector::precision()), true),
        (Box::new(DomainQuerySelector::recall()), true),
        (Box::new(LmSelector::new()), false),
        (Box::new(AqSelector::new()), false),
        (Box::new(HrSelector::new()), true),
        (Box::new(MqSelector::new()), false),
        (Box::new(RndSelector::new(7)), false),
    ];

    println!(
        "shoot-out: {} test entities × {} aspects, {} queries, normalized vs ideal\n",
        test.len(),
        corpus.aspect_count(),
        cfg.n_queries
    );

    let mut board: Vec<(String, f64, f64, f64)> = Vec::new();
    for (mut sel, with_domain) in contenders {
        let eval = evaluate_selector(
            &ctx,
            if with_domain { Some(&domain) } else { None },
            test,
            None,
            sel.as_mut(),
            &cfg,
            &bounds,
        );
        if let Some(it) = eval.at(cfg.n_queries) {
            board.push((
                eval.name.clone(),
                it.normalized.precision,
                it.normalized.recall,
                it.normalized.f1,
            ));
        }
    }

    board.sort_by(|a, b| b.3.partial_cmp(&a.3).unwrap_or(std::cmp::Ordering::Equal));
    println!(
        "{:10} {:>10} {:>8} {:>8}",
        "method", "precision", "recall", "F1"
    );
    for (name, p, r, f) in &board {
        println!("{name:10} {p:>10.3} {r:>8.3} {f:>8.3}");
    }
    println!("\n(IDEAL fires every candidate through the engine — an infeasible upper bound;\n normalized against itself it scores 1.0 by construction.)");
}
