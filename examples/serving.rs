//! Serving in one process: spawn a `HarvestServer` on an ephemeral port,
//! drive two concurrent sessions over real TCP, and read the cache
//! counters back through the `stats` op.
//!
//! ```bash
//! cargo run --release --example serving
//! ```

use l2q::aspect::{train_aspect_models, RelevanceOracle, TrainConfig};
use l2q::core::L2qConfig;
use l2q::corpus::{generate, researchers_domain, CorpusConfig};
use l2q::service::{BundleConfig, Client, HarvestServer, ServerConfig, ServingBundle};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("building corpus + serving bundle...");
    let corpus = Arc::new(generate(
        &researchers_domain(),
        &CorpusConfig {
            n_entities: 24,
            pages_per_entity: 16,
            ..CorpusConfig::default()
        },
    )?);
    let models = train_aspect_models(&corpus, &TrainConfig::default());
    let oracle = RelevanceOracle::from_models(&corpus, &models);
    let bundle = Arc::new(ServingBundle::with_oracle(
        corpus,
        models,
        oracle,
        L2qConfig::default(),
        BundleConfig::default(),
    ));

    let mut server = HarvestServer::spawn(bundle, ServerConfig::default(), "127.0.0.1:0")?;
    let addr = server.addr();
    println!("serving on {addr}");

    // Two clients harvest different entities concurrently over TCP.
    let workers: Vec<_> = [(10u32, "RESEARCH"), (11u32, "AWARD")]
        .into_iter()
        .map(|(entity, aspect)| {
            std::thread::spawn(move || -> Result<(), String> {
                let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
                let session = client
                    .create(entity, aspect, "l2qbal", Some(4), 6)
                    .map_err(|e| e.to_string())?;
                loop {
                    let resp = client.step(session, 2, 40).map_err(|e| e.to_string())?;
                    if resp.state.as_deref() != Some("running") {
                        println!(
                            "entity {entity} / {aspect}: {} ({} queries, {} pages)",
                            resp.state.unwrap_or_default(),
                            resp.steps_taken.unwrap_or(0),
                            resp.gathered.unwrap_or(0),
                        );
                        break;
                    }
                }
                let snap = client.snapshot(session).map_err(|e| e.to_string())?;
                for q in snap.queries.unwrap_or_default() {
                    println!("entity {entity} fired: {q}");
                }
                client.close(session).map_err(|e| e.to_string())?;
                Ok(())
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread panicked")?;
    }

    let mut client = Client::connect(addr)?;
    let stats = client.stats()?.stats.expect("stats body");
    println!(
        "stats: {} sessions served, {} steps, retrieval cache {:.0}% hit rate, \
         {} domain solve(s)",
        stats.sessions_created,
        stats.steps_executed,
        stats.retrieval_cache_hit_rate * 100.0,
        stats.domain_cache_misses,
    );

    server.shutdown();
    Ok(())
}
