//! Business-analytics scenario (paper Sect. I): drill down into one
//! product aspect — here SAFETY of a car model — comparing L2QBAL against
//! a manually designed query plan, and show the harvested evidence.
//!
//! ```text
//! cargo run --release --example business_analytics
//! ```
//!
//! The analyst wants every page discussing the model's SAFETY to feed a
//! downstream opinion-mining step; wasting fetches on listings or pricing
//! pages costs money (commercial search APIs bill per query).

use l2q::aspect::{train_aspect_models, RelevanceOracle, TrainConfig};
use l2q::baselines::MqSelector;
use l2q::core::{learn_domain, Harvester, L2qConfig, L2qSelector, QuerySelector};
use l2q::corpus::{cars_domain, generate, CorpusConfig, EntityId};
use l2q::eval::page_metrics;
use l2q::retrieval::SearchEngine;

fn main() {
    let corpus =
        generate(&cars_domain(), &CorpusConfig::with_entities(60)).expect("corpus generation");
    let corpus = std::sync::Arc::new(corpus);
    let models = train_aspect_models(&corpus, &TrainConfig::default());
    let oracle = RelevanceOracle::from_models(&corpus, &models);
    let engine = SearchEngine::with_defaults(corpus.clone());
    let cfg = L2qConfig::default().with_n_queries(4);

    let domain_entities: Vec<EntityId> = corpus.entity_ids().take(40).collect();
    let domain = learn_domain(&corpus, &domain_entities, &oracle, &cfg);

    let target = EntityId(55);
    let aspect = corpus.aspect_by_name("SAFETY").expect("aspect exists");
    println!(
        "analyzing SAFETY of {} ({} relevant pages exist)\n",
        corpus.entity(target).name,
        oracle.relevant_count(&corpus, target, aspect)
    );

    let harvester = Harvester {
        corpus: &corpus,
        engine: &engine,
        oracle: &oracle,
        domain: Some(&domain),
        cfg,
    };

    for selector in [
        Box::new(L2qSelector::l2qbal()) as Box<dyn QuerySelector>,
        Box::new(MqSelector::new()),
    ] {
        let mut selector = selector;
        let record = harvester.run(target, aspect, selector.as_mut());
        let m = page_metrics(&corpus, &oracle, target, aspect, &record.gathered)
            .expect("relevant pages exist");
        println!("-- {} --", selector.name());
        for it in &record.iterations {
            println!(
                "  fired \"{}\" (+{} pages)",
                it.query.render(&corpus.symbols),
                it.new_pages.len()
            );
        }
        println!(
            "  harvested {} pages: precision {:.2}, recall {:.2}\n",
            record.gathered.len(),
            m.precision,
            m.recall
        );

        // Show a sample of harvested safety evidence for the analyst.
        if selector.name() == "L2QBAL" {
            println!("  sample harvested safety paragraphs:");
            let mut shown = 0;
            'outer: for &p in &record.gathered {
                for para in &corpus.page(p).paragraphs {
                    if para.label.is_relevant_to(aspect) {
                        println!("    · {}", corpus.symbols.render(&para.words));
                        shown += 1;
                        if shown >= 5 {
                            break 'outer;
                        }
                        break;
                    }
                }
            }
            println!();
        }
    }
}
