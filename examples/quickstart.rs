//! Quickstart: harvest one entity aspect with the full L2Q pipeline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks through the whole system in ~40 lines: generate a corpus, train
//! the aspect classifiers, learn the domain model from peer entities, and
//! harvest a target researcher's RESEARCH pages with L2QBAL.

use l2q::aspect::{train_aspect_models, RelevanceOracle, TrainConfig};
use l2q::core::{learn_domain, Harvester, L2qConfig, L2qSelector};
use l2q::corpus::{generate, researchers_domain, CorpusConfig, EntityId};
use l2q::eval::page_metrics;
use l2q::retrieval::SearchEngine;

fn main() {
    // 1. A frozen "Web" corpus: 60 researchers, 30 pages each.
    let corpus = generate(&researchers_domain(), &CorpusConfig::with_entities(60))
        .expect("corpus generation");
    let corpus = std::sync::Arc::new(corpus);
    println!(
        "corpus: {} entities, {} pages",
        corpus.entities.len(),
        corpus.pages.len()
    );

    // 2. Train one classifier per aspect and materialize the relevance
    //    function Y — its output is the ground truth, as in the paper.
    let models = train_aspect_models(&corpus, &TrainConfig::default());
    let oracle = RelevanceOracle::from_models(&corpus, &models);

    // 3. The search engine: Dirichlet-smoothed query likelihood, top-5.
    let engine = SearchEngine::with_defaults(corpus.clone());

    // 4. Domain phase (runs once): learn template utilities from the
    //    first 30 entities, our peers.
    let cfg = L2qConfig::default();
    let domain_entities: Vec<EntityId> = corpus.entity_ids().take(30).collect();
    let domain = learn_domain(&corpus, &domain_entities, &oracle, &cfg);
    println!(
        "domain model: {} queries, {} templates from {} peers",
        domain.query_count(),
        domain.template_count(),
        domain.domain_entity_count()
    );

    // 5. Entity phase: harvest a target entity (not a peer!) for RESEARCH.
    let target = EntityId(45);
    let aspect = corpus.aspect_by_name("RESEARCH").expect("aspect exists");
    let harvester = Harvester {
        corpus: &corpus,
        engine: &engine,
        oracle: &oracle,
        domain: Some(&domain),
        cfg,
    };
    let mut selector = L2qSelector::l2qbal();
    let record = harvester.run(target, aspect, &mut selector);

    println!(
        "\nharvesting {} / RESEARCH (seed: \"{}\")",
        corpus.entity(target).name,
        corpus.entity(target).seed_query
    );
    println!("  seed retrieved {} pages", record.seed_results.len());
    for (i, it) in record.iterations.iter().enumerate() {
        println!(
            "  query {}: \"{}\"  (+{} new pages)",
            i + 1,
            it.query.render(&corpus.symbols),
            it.new_pages.len()
        );
    }

    let metrics = page_metrics(&corpus, &oracle, target, aspect, &record.gathered)
        .expect("entity has relevant pages");
    println!(
        "\ngathered {} pages: precision {:.2}, recall {:.2}, F1 {:.2}",
        record.gathered.len(),
        metrics.precision,
        metrics.recall,
        metrics.f1
    );
}
