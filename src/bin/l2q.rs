//! `l2q` — command-line interface to the Learning-to-Query pipeline.
//!
//! ```text
//! l2q corpus   --domain researchers [--entities N] [--seed N]
//! l2q aspects  --domain cars        [--entities N] [--seed N]
//! l2q harvest  --domain researchers --entity 45 --aspect RESEARCH
//!              [--method l2qbal|l2qp|l2qr|p|r|p+t|r+t|lm|aq|hr|mq|rnd|ideal]
//!              [--queries N] [--paragraphs] [--model FILE]
//! l2q export-model --domain researchers --out model.json
//! ```
//!
//! Everything runs on the built-in synthetic corpora (deterministic per
//! seed); `harvest` prints the fired queries and the resulting
//! precision/recall, `export-model` persists a learned domain model as
//! portable JSON that `harvest --model` can reload.

use l2q::aspect::{train_aspect_models, RelevanceOracle, TrainConfig};
use l2q::baselines::{
    AqSelector, DomainQuerySelector, HrSelector, LmSelector, MqSelector, RndSelector,
};
use l2q::core::{learn_domain, DomainModel, Harvester, L2qConfig, L2qSelector, QuerySelector};
use l2q::corpus::{
    cars_domain, explode_to_paragraphs, generate, researchers_domain, Corpus, CorpusConfig,
    EntityId,
};
use l2q::eval::{page_metrics, IdealSelector};
use l2q::retrieval::SearchEngine;
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
l2q — Learning to Query (ICDE 2016 reproduction)

USAGE:
  l2q corpus        --domain <researchers|cars> [--entities N] [--seed N]
  l2q aspects       --domain <researchers|cars> [--entities N] [--seed N]
  l2q harvest       --domain <researchers|cars> --entity <INDEX> --aspect <NAME>
                    [--method NAME] [--queries N] [--seed N] [--entities N]
                    [--paragraphs] [--model FILE]
  l2q eval          --domain <researchers|cars> [--methods a,b,c] [--queries N]
                    [--test N] [--entities N] [--seed N] [--paragraphs]
  l2q export-model  --domain <researchers|cars> --out FILE [--entities N] [--seed N]

METHODS:
  l2qbal (default), l2qp, l2qr, p, r, p+t, r+t, p+q, r+q, lm, aq, hr, mq, rnd, ideal
";

/// Minimal `--key value` / `--flag` parser.
struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
    command: Option<String>,
}

impl Args {
    fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut it = args.into_iter().peekable();
        let command = it.next();
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument '{arg}'"));
            };
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    values.insert(key.to_owned(), it.next().expect("peeked"));
                }
                _ => flags.push(key.to_owned()),
            }
        }
        Ok(Self {
            values,
            flags,
            command,
        })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got '{v}'")),
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("--{key} is required"))
    }
}

struct Session {
    corpus: std::sync::Arc<Corpus>,
    oracle: RelevanceOracle,
    accuracy: Vec<f64>,
}

fn build_session(args: &Args) -> Result<Session, String> {
    let domain = args.require("domain")?;
    let spec = match domain {
        "researchers" => researchers_domain(),
        "cars" => cars_domain(),
        other => return Err(format!("unknown domain '{other}' (researchers|cars)")),
    };
    let default_entities = if domain == "researchers" { 100 } else { 80 };
    let config = CorpusConfig {
        n_entities: args.parsed("entities", default_entities)?,
        pages_per_entity: args.parsed("pages", 30)?,
        seed: args.parsed("seed", 42u64)?,
        ..CorpusConfig::default()
    };
    let base = generate(&spec, &config).map_err(|e| e.to_string())?;
    let corpus = if args.flag("paragraphs") {
        explode_to_paragraphs(&base).0
    } else {
        base
    };
    let corpus = std::sync::Arc::new(corpus);
    let models = train_aspect_models(&corpus, &TrainConfig::default());
    let accuracy = models.iter().map(|m| m.accuracy).collect();
    let oracle = RelevanceOracle::from_models(&corpus, &models);
    Ok(Session {
        corpus,
        oracle,
        accuracy,
    })
}

fn make_selector(name: &str, seed: u64) -> Result<Box<dyn QuerySelector>, String> {
    Ok(match name {
        "l2qbal" => Box::new(L2qSelector::l2qbal()),
        "l2qp" => Box::new(L2qSelector::l2qp()),
        "l2qr" => Box::new(L2qSelector::l2qr()),
        "p" => Box::new(L2qSelector::precision_only()),
        "r" => Box::new(L2qSelector::recall_only()),
        "p+t" => Box::new(L2qSelector::precision_templates()),
        "r+t" => Box::new(L2qSelector::recall_templates()),
        "p+q" => Box::new(DomainQuerySelector::precision()),
        "r+q" => Box::new(DomainQuerySelector::recall()),
        "lm" => Box::new(LmSelector::new()),
        "aq" => Box::new(AqSelector::new()),
        "hr" => Box::new(HrSelector::new()),
        "mq" => Box::new(MqSelector::new()),
        "rnd" => Box::new(RndSelector::new(seed)),
        "ideal" => Box::new(IdealSelector::new()),
        other => return Err(format!("unknown method '{other}'")),
    })
}

fn cmd_corpus(args: &Args) -> Result<(), String> {
    let s = build_session(args)?;
    let c = &s.corpus;
    println!("domain:      {}", c.domain);
    println!("entities:    {}", c.entities.len());
    println!("pages:       {}", c.pages.len());
    println!("paragraphs:  {}", c.paragraph_count());
    println!("vocabulary:  {} symbols", c.symbols.len());
    println!("types:       {}", c.types.len());
    println!("\nfirst entities:");
    for e in c.entities.iter().take(5) {
        println!("  [{:>3}] {}  (seed: \"{}\")", e.id.0, e.name, e.seed_query);
    }
    Ok(())
}

fn cmd_aspects(args: &Args) -> Result<(), String> {
    let s = build_session(args)?;
    let freq = s.corpus.paragraph_frequency();
    println!("{:14} {:>10} {:>10}", "Aspect", "Frequency", "Accuracy");
    for a in s.corpus.aspects() {
        println!(
            "{:14} {:>10} {:>10.2}",
            s.corpus.aspect_name(a),
            freq[a.index()],
            s.accuracy[a.index()]
        );
    }
    Ok(())
}

fn cmd_harvest(args: &Args) -> Result<(), String> {
    let s = build_session(args)?;
    let c = &s.corpus;
    let entity_idx: u32 = args
        .require("entity")?
        .parse()
        .map_err(|_| "--entity expects an index".to_owned())?;
    if entity_idx as usize >= c.entities.len() {
        return Err(format!(
            "entity index {entity_idx} out of range (corpus has {})",
            c.entities.len()
        ));
    }
    let entity = EntityId(entity_idx);
    let aspect_name = args.require("aspect")?;
    let aspect = c
        .aspect_by_name(aspect_name)
        .ok_or_else(|| format!("unknown aspect '{aspect_name}'"))?;
    let method = args.get("method").unwrap_or("l2qbal").to_lowercase();

    let engine = SearchEngine::with_defaults(s.corpus.clone());
    let cfg = L2qConfig::default().with_n_queries(args.parsed("queries", 3usize)?);

    // Domain phase from the other half of the corpus (excluding target).
    let domain_entities: Vec<EntityId> = c
        .entity_ids()
        .filter(|&e| e != entity)
        .take(c.entities.len() / 2)
        .collect();
    let domain = match args.get("model") {
        Some(path) => {
            let json =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let (dm, stats) = DomainModel::from_json(&json, c).map_err(|e| e.to_string())?;
            println!(
                "loaded model: {} queries ({} dropped), {} templates ({} dropped)",
                stats.queries_resolved,
                stats.queries_dropped,
                stats.templates_resolved,
                stats.templates_dropped
            );
            dm
        }
        None => learn_domain(c, &domain_entities, &s.oracle, &cfg),
    };

    let harvester = Harvester {
        corpus: c,
        engine: &engine,
        oracle: &s.oracle,
        domain: Some(&domain),
        cfg,
    };
    let mut selector = make_selector(&method, args.parsed("seed", 42u64)?)?;
    let rec = harvester.run(entity, aspect, selector.as_mut());

    println!(
        "harvesting {} / {} with {}",
        c.entity(entity).name,
        c.aspect_name(aspect),
        selector.name()
    );
    println!(
        "  seed \"{}\" retrieved {} units",
        c.entity(entity).seed_query,
        rec.seed_results.len()
    );
    for (i, it) in rec.iterations.iter().enumerate() {
        println!(
            "  query {}: \"{}\"  (+{} new)",
            i + 1,
            it.query.render(&c.symbols),
            it.new_pages.len()
        );
    }
    match page_metrics(c, &s.oracle, entity, aspect, &rec.gathered) {
        Some(m) => println!(
            "gathered {} units: precision {:.2}  recall {:.2}  F1 {:.2}  (selection {:?})",
            rec.gathered.len(),
            m.precision,
            m.recall,
            m.f1,
            rec.selection_time
        ),
        None => println!("entity has no relevant units for this aspect"),
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    use l2q::eval::{evaluate_selector, ideal_bounds_parallel, make_splits, EvalContext};
    let s = build_session(args)?;
    let c = &s.corpus;
    let engine = SearchEngine::with_defaults(s.corpus.clone());
    let cfg = L2qConfig::default().with_n_queries(args.parsed("queries", 3usize)?);
    let seed: u64 = args.parsed("seed", 42)?;

    let split = make_splits(c.entities.len(), 1, seed ^ 0x51)
        .pop()
        .expect("one split");
    let mut test = split.test.clone();
    test.truncate(args.parsed("test", 8usize)?);
    let domain = learn_domain(c, &split.domain, &s.oracle, &cfg);

    let ctx = EvalContext {
        corpus: c,
        engine: &engine,
        oracle: &s.oracle,
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let bounds = ideal_bounds_parallel(&ctx, Some(&domain), &test, &cfg, threads);

    let methods: Vec<String> = args
        .get("methods")
        .unwrap_or("l2qbal,l2qp,l2qr,lm,aq,hr,mq,rnd")
        .split(',')
        .map(|m| m.trim().to_lowercase())
        .collect();

    println!(
        "evaluating {} methods on {} test entities × {} aspects ({} queries, normalized)\n",
        methods.len(),
        test.len(),
        c.aspect_count(),
        cfg.n_queries
    );
    println!(
        "{:10} {:>10} {:>8} {:>8} {:>8}",
        "method", "precision", "recall", "F1", "pairs"
    );
    for m in &methods {
        // Domain-free baselines must not see the domain model.
        let with_domain = !matches!(m.as_str(), "rnd" | "p" | "r" | "lm" | "aq" | "mq");
        let mut sel = make_selector(m, seed)?;
        let eval = evaluate_selector(
            &ctx,
            if with_domain { Some(&domain) } else { None },
            &test,
            None,
            sel.as_mut(),
            &cfg,
            &bounds,
        );
        if let Some(it) = eval.at(cfg.n_queries) {
            println!(
                "{:10} {:>10.4} {:>8.4} {:>8.4} {:>8}",
                eval.name,
                it.normalized.precision,
                it.normalized.recall,
                it.normalized.f1,
                it.pairs
            );
        }
    }
    Ok(())
}

fn cmd_export_model(args: &Args) -> Result<(), String> {
    let s = build_session(args)?;
    let out = args.require("out")?;
    let cfg = L2qConfig::default();
    let domain_entities: Vec<EntityId> = s
        .corpus
        .entity_ids()
        .take(s.corpus.entities.len() / 2)
        .collect();
    let dm = learn_domain(&s.corpus, &domain_entities, &s.oracle, &cfg);
    let json = dm.to_json(&s.corpus);
    std::fs::write(out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "exported {} queries / {} templates from {} peers to {out} ({} KiB)",
        dm.query_count(),
        dm.template_count(),
        dm.domain_entity_count(),
        json.len() / 1024
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let args = Args::parse(std::env::args().skip(1))?;
    match args.command.as_deref() {
        Some("corpus") => cmd_corpus(&args),
        Some("aspects") => cmd_aspects(&args),
        Some("harvest") => cmd_harvest(&args),
        Some("eval") => cmd_eval(&args),
        Some("export-model") => cmd_export_model(&args),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Args {
        Args::parse(parts.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn args_parse_values_and_flags() {
        let a = parse(&[
            "harvest",
            "--domain",
            "cars",
            "--entity",
            "3",
            "--paragraphs",
        ]);
        assert_eq!(a.command.as_deref(), Some("harvest"));
        assert_eq!(a.get("domain"), Some("cars"));
        assert_eq!(a.get("entity"), Some("3"));
        assert!(a.flag("paragraphs"));
        assert!(!a.flag("json"));
        assert_eq!(a.parsed("entity", 0u32).unwrap(), 3);
        assert!(a.require("domain").is_ok());
        assert!(a.require("missing").is_err());
    }

    #[test]
    fn args_reject_positional_garbage() {
        assert!(Args::parse(["harvest".into(), "oops".into()]).is_err());
    }

    #[test]
    fn parsed_rejects_non_numeric() {
        let a = parse(&["corpus", "--entities", "abc"]);
        assert!(a.parsed("entities", 1usize).is_err());
    }

    #[test]
    fn every_documented_method_resolves() {
        for m in [
            "l2qbal", "l2qp", "l2qr", "p", "r", "p+t", "r+t", "p+q", "r+q", "lm", "aq", "hr", "mq",
            "rnd", "ideal",
        ] {
            assert!(make_selector(m, 1).is_ok(), "method {m} failed");
        }
        assert!(make_selector("nope", 1).is_err());
    }
}
