//! # l2q — Learning to Query
//!
//! Facade crate re-exporting the full L2Q workspace: a reproduction of
//! *Fang, Zheng, Chang. "Learning to Query: Focused Web Page Harvesting for
//! Entity Aspects." ICDE 2016.*
//!
//! See the individual crates for details:
//!
//! * [`text`] — tokenization, interning, n-grams, bag-of-words.
//! * [`corpus`] — type system / knowledge base, synthetic web corpora for
//!   the researcher and car domains.
//! * [`retrieval`] — inverted index + Dirichlet-smoothed query-likelihood
//!   search engine.
//! * [`aspect`] — per-aspect paragraph classifiers materializing the target
//!   relevance function Y.
//! * [`graph`] — page–query–template reinforcement graph and the
//!   precision/recall random walks with restart.
//! * [`core`] — templates, domain/entity phases, context-aware collective
//!   utilities, the L2QP/L2QR/L2QBAL selectors and the harvest loop.
//! * [`baselines`] — RND, ablations (P, R, P+q, R+q, P+t, R+t) and the
//!   published baselines LM, AQ, HR, MQ.
//! * [`eval`] — ideal-solution normalization, split protocol and the
//!   experiment runner regenerating every figure of the paper.
//! * [`store`] — embedded durability for harvest sessions: CRC-framed
//!   write-ahead log with group commit, compacting snapshots, and
//!   bit-identical recovery (newest valid snapshot + WAL tail replay).
//! * [`service`] — concurrent multi-session harvest server: shared
//!   `Arc`'d serving bundle, retrieval/domain caches, worker pool, and a
//!   line-delimited JSON wire protocol (`l2q-serve` / `l2q-client`).
//! * [`obs`] — zero-dependency metrics + structured tracing: a global
//!   registry of counters/gauges/latency histograms threaded through the
//!   harvest loop, graph solver, retrieval and the serving layer.

#![forbid(unsafe_code)]

pub use l2q_aspect as aspect;
pub use l2q_baselines as baselines;
pub use l2q_core as core;
pub use l2q_corpus as corpus;
pub use l2q_eval as eval;
pub use l2q_graph as graph;
pub use l2q_obs as obs;
pub use l2q_retrieval as retrieval;
pub use l2q_service as service;
pub use l2q_store as store;
pub use l2q_text as text;
